"""Sharded fabric execution: conservative parallel discrete-event mode.

A :class:`~repro.platform.fabric.FabricTopology` already declares the
only facts a conservative PDES needs: clusters are coordination domains
(their islands share local state), and cross-cluster links carry a
declared one-way latency. :class:`ShardPlan` cuts the fabric at cluster
boundaries into shards; the minimum cross-cluster link latency is the
*lookahead* — a message sent during the window ``[T, T+W)`` (with ``W``
at most the lookahead) cannot be due before ``T+W``, so every shard may
advance its own :class:`~repro.sim.Simulator` through the whole window
without ever hearing from another shard's past.

The pieces:

* :class:`ShardConfig` — the user-facing knobs (``shards``, ``workers``,
  ``window_ns``, plus the supervision knobs: barrier deadline,
  heartbeat/probe intervals, respawn budget, journal bound), carried by
  ``TestbedConfig.shard``.
* :class:`ShardPlan` — the deterministic cut: cluster groups, lookahead,
  window width. Depends only on topology + shard count, never on worker
  placement.
* :class:`BoundaryRouter` / :class:`BoundaryMessage` — the *only* path
  cross-cluster control traffic takes, in every execution mode. Messages
  are stamped ``(deliver_at, dst, src, seq)`` and applied in exactly
  that order, so the receiving shard's trajectory is a function of the
  message set, not of which process produced it.
* :class:`LinkHealth` — heartbeat-driven UP/SUSPECT/DOWN detection with
  epoch-bump recovery for boundary links (the PR-5 fault idiom crossing
  shard boundaries).
* :class:`ShardHost` — one shard's simulator + router + world, advanced
  window by window.
* :class:`WindowJournal` — the bounded per-run journal of every window
  grant and routed inbound batch: the complete deterministic input of
  any shard, and therefore the recovery substrate.
* :class:`SupervisedEngine` / :class:`SupervisionLog` /
  :class:`FaultScript` — the self-healing process engine: barrier
  deadlines, heartbeat liveness probes, kill/respawn with backoff under
  a budget, fast-forward by journal replay, and whole-run degradation to
  the inline engine when recovery is out of moves.
* :func:`run_sharded` — the coordinator: journals and grants windows,
  barriers, routes boundary batches; runs shards inline (one process)
  or under supervised worker processes, with *bit-identical* results
  either way — even across worker crashes, hangs and degradations.
"""

from .config import ShardConfig
from .plan import ShardPlan
from .ports import BoundaryMessage, BoundaryRouter, BoundaryRoutingError
from .health import LINK_DOWN, LINK_SUSPECT, LINK_UP, LinkHealth
from .host import ShardContext, ShardHost
from .journal import WindowJournal
from .supervisor import (
    FaultScript,
    ShardWorkerError,
    SupervisedEngine,
    SupervisionExhausted,
    SupervisionLog,
)
from .worker import BUILD_WINDOW, FINISH_WINDOW
from .runtime import (
    DegradationLog,
    ShardRunResult,
    reset_degradation_warnings,
    run_sharded,
)

__all__ = [
    "BUILD_WINDOW",
    "BoundaryMessage",
    "BoundaryRouter",
    "BoundaryRoutingError",
    "DegradationLog",
    "FINISH_WINDOW",
    "FaultScript",
    "LINK_DOWN",
    "LINK_SUSPECT",
    "LINK_UP",
    "LinkHealth",
    "ShardConfig",
    "ShardContext",
    "ShardHost",
    "ShardPlan",
    "ShardRunResult",
    "ShardWorkerError",
    "SupervisedEngine",
    "SupervisionExhausted",
    "SupervisionLog",
    "WindowJournal",
    "reset_degradation_warnings",
    "run_sharded",
]
