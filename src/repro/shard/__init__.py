"""Sharded fabric execution: conservative parallel discrete-event mode.

A :class:`~repro.platform.fabric.FabricTopology` already declares the
only facts a conservative PDES needs: clusters are coordination domains
(their islands share local state), and cross-cluster links carry a
declared one-way latency. :class:`ShardPlan` cuts the fabric at cluster
boundaries into shards; the minimum cross-cluster link latency is the
*lookahead* — a message sent during the window ``[T, T+W)`` (with ``W``
at most the lookahead) cannot be due before ``T+W``, so every shard may
advance its own :class:`~repro.sim.Simulator` through the whole window
without ever hearing from another shard's past.

The pieces:

* :class:`ShardConfig` — the user-facing knobs (``shards``, ``workers``,
  ``window_ns``), carried by ``TestbedConfig.shard``.
* :class:`ShardPlan` — the deterministic cut: cluster groups, lookahead,
  window width. Depends only on topology + shard count, never on worker
  placement.
* :class:`BoundaryRouter` / :class:`BoundaryMessage` — the *only* path
  cross-cluster control traffic takes, in every execution mode. Messages
  are stamped ``(deliver_at, dst, src, seq)`` and applied in exactly
  that order, so the receiving shard's trajectory is a function of the
  message set, not of which process produced it.
* :class:`LinkHealth` — heartbeat-driven UP/SUSPECT/DOWN detection with
  epoch-bump recovery for boundary links (the PR-5 fault idiom crossing
  shard boundaries).
* :class:`ShardHost` — one shard's simulator + router + world, advanced
  window by window.
* :func:`run_sharded` — the coordinator: grants windows, barriers,
  routes boundary batches; runs shards inline (one process) or in
  worker processes over seq-numbered pipes, with *bit-identical*
  results either way.
"""

from .config import ShardConfig
from .plan import ShardPlan
from .ports import BoundaryMessage, BoundaryRouter, BoundaryRoutingError
from .health import LINK_DOWN, LINK_SUSPECT, LINK_UP, LinkHealth
from .host import ShardContext, ShardHost
from .runtime import ShardRunResult, ShardWorkerError, run_sharded

__all__ = [
    "BoundaryMessage",
    "BoundaryRouter",
    "BoundaryRoutingError",
    "LINK_DOWN",
    "LINK_SUSPECT",
    "LINK_UP",
    "LinkHealth",
    "ShardConfig",
    "ShardContext",
    "ShardHost",
    "ShardPlan",
    "ShardRunResult",
    "ShardWorkerError",
    "run_sharded",
]
