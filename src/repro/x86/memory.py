"""Guest memory: working sets, paging pressure, and the balloon driver.

The paper's future work (§5) names memory among the resources whose
coordination policies it wants to explore. The model: each domain has a
*working set*; when its balloon-adjusted allocation falls below it, the
guest pages, inflating every CPU burst by a pressure factor (page-fault
handling and I/O stalls folded into service time — the standard queueing
abstraction of thrashing).

The balloon driver is the Tune translation target: a ``mem:<vm>`` entity
whose +/- delta moves megabytes between domains, subject to the host's
physical total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import PeriodicTask, Simulator, Tracer
from .vm import VirtualMachine


@dataclass(frozen=True, slots=True)
class PagingModel:
    """How allocation deficits inflate CPU service times."""

    #: Service-time multiplier slope per unit of working-set deficit: at
    #: allocation = 50% of the working set, bursts take 1 + 0.5*slope
    #: times as long.
    slope: float = 4.0
    #: Upper bound on inflation (fully-thrashing guest).
    max_factor: float = 6.0

    def factor(self, working_set_mb: float, allocated_mb: float) -> float:
        """Service-time multiplier for the given allocation."""
        if working_set_mb <= 0:
            return 1.0
        if allocated_mb <= 0:
            return self.max_factor
        deficit = max(0.0, working_set_mb - allocated_mb) / working_set_mb
        return min(self.max_factor, 1.0 + self.slope * deficit)


class BalloonDriver:
    """Moves memory between domains under a fixed physical total."""

    def __init__(
        self,
        sim: Simulator,
        total_mb: int,
        paging: Optional[PagingModel] = None,
        min_allocation_mb: int = 64,
        tracer: Optional[Tracer] = None,
    ):
        if total_mb <= 0:
            raise ValueError("total memory must be positive")
        self.sim = sim
        self.total_mb = total_mb
        self.paging = paging or PagingModel()
        self.min_allocation_mb = min_allocation_mb
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._vms: dict[str, VirtualMachine] = {}
        self.adjustments = 0

    # -- membership -----------------------------------------------------------

    def manage(self, vm: VirtualMachine, working_set_mb: Optional[int] = None) -> None:
        """Put a domain under balloon management.

        Its current ``memory_mb`` becomes the starting allocation; the
        working set defaults to that value (no initial pressure).
        """
        if vm.name in self._vms:
            raise ValueError(f"domain {vm.name!r} already ballooned")
        if self.allocated_total() + vm.memory_mb > self.total_mb:
            raise ValueError("initial allocations exceed physical memory")
        self._vms[vm.name] = vm
        vm.working_set_mb = working_set_mb if working_set_mb is not None else vm.memory_mb
        vm.demand_inflation = self._make_inflation(vm)

    def _make_inflation(self, vm: VirtualMachine):
        def inflation() -> float:
            return self.paging.factor(vm.working_set_mb, vm.memory_mb)

        return inflation

    def allocated_total(self) -> int:
        """Megabytes currently allocated to managed domains."""
        return sum(vm.memory_mb for vm in self._vms.values())

    @property
    def free_mb(self) -> int:
        """Unallocated physical memory."""
        return self.total_mb - self.allocated_total()

    # -- the Tune translation ---------------------------------------------------

    def adjust(self, vm_name: str, delta_mb: int) -> int:
        """Grow (or shrink) a domain's allocation; returns the new size.

        Growth is limited by free memory; shrink by the floor. This is
        what a ``Tune(mem:<vm>, +/-N)`` lands on.
        """
        vm = self._vms[vm_name]
        if delta_mb > 0:
            delta_mb = min(delta_mb, self.free_mb)
        new_size = max(self.min_allocation_mb, vm.memory_mb + delta_mb)
        applied = new_size - vm.memory_mb
        vm.memory_mb = new_size
        self.adjustments += 1
        self.tracer.emit("balloon", "adjust", vm=vm_name, delta=applied, size=new_size)
        return new_size

    def pressure(self, vm_name: str) -> float:
        """Current service-time inflation factor of a domain."""
        vm = self._vms[vm_name]
        return self.paging.factor(vm.working_set_mb, vm.memory_mb)


@dataclass(frozen=True, slots=True)
class BalloonTarget:
    """Coordination entity for one domain's memory allocation."""

    driver: BalloonDriver
    vm_name: str


class MemoryBalancerPolicy:
    """Coordinated ballooning: give memory to whoever is thrashing.

    Periodically compares managed domains' pressure; moves a chunk from
    the least- to the most-pressured domain when the spread is large. A
    static-split baseline simply never runs this.
    """

    def __init__(
        self,
        sim: Simulator,
        balloon: BalloonDriver,
        period: int,
        chunk_mb: int = 32,
        threshold: float = 0.3,
    ):
        self.sim = sim
        self.balloon = balloon
        self.chunk_mb = chunk_mb
        self.threshold = threshold
        self.moves = 0
        self._task = PeriodicTask(sim, period, self._rebalance, name="memory-balancer")

    def _rebalance(self) -> None:
        vms = list(self.balloon._vms.values())
        if len(vms) < 2:
            return
        ranked = sorted(vms, key=lambda vm: self.balloon.pressure(vm.name))
        donor, taker = ranked[0], ranked[-1]
        spread = self.balloon.pressure(taker.name) - self.balloon.pressure(donor.name)
        if spread < self.threshold:
            return
        before = donor.memory_mb
        after = self.balloon.adjust(donor.name, -self.chunk_mb)
        freed = before - after
        if freed > 0:
            self.balloon.adjust(taker.name, freed)
            self.moves += 1
