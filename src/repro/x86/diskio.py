"""Disk and weighted I/O scheduler for the x86 island.

The paper's Tune mechanism is deliberately scheduler-agnostic: a +/- value
"will get translated into corresponding weight or priority adjustments,
depending on the remote island's scheduling algorithm (e.g., credit
adjustments in Xen scheduler or **poll time adjustments in an I/O
scheduler**)" (§3.3). This module provides that second translation target:
a shared disk whose scheduler serves per-VM queues by weight, with a
tunable dispatch poll interval.

The disk model is 2008-era SATA: a seek penalty per non-sequential request
plus transfer at sustained bandwidth, one request in service at a time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..sim import Event, Simulator, Tracer, ms
from .vm import VirtualMachine


@dataclass(frozen=True, slots=True)
class DiskParams:
    """Physical characteristics of the disk."""

    #: Average positioning time for a non-sequential request.
    seek_time: int = ms(8)
    #: Sustained media bandwidth, bytes per nanosecond (80 MB/s).
    bandwidth_bytes_per_ns: float = 0.08
    #: Requests issued at consecutive offsets skip the seek.
    sequential_window: int = 4


@dataclass
class IORequest:
    """One disk request from a guest."""

    vm_name: str
    size: int
    sequential: bool
    done: Event
    enqueued_at: int


class IOQueue:
    """Per-VM disk queue with a scheduler weight (the Tune target)."""

    def __init__(self, vm_name: str, weight: int = 100):
        self.vm_name = vm_name
        self.weight = max(1, weight)
        self.pending: deque[IORequest] = deque()
        self.completed = 0
        self.total_wait = 0
        #: Deficit counter for weighted round-robin service.
        self.deficit = 0.0

    def __len__(self) -> int:
        return len(self.pending)

    def mean_wait(self) -> float:
        """Mean queueing delay (ns) of completed requests."""
        return self.total_wait / self.completed if self.completed else 0.0


class WeightedIOScheduler:
    """Deficit-weighted round-robin over per-VM queues, one disk server.

    ``poll_interval`` is the idle re-check period: a strictly polling
    dispatcher (interval > 0) adds up to that much latency to a request
    arriving at an idle disk — the knob the paper's quote refers to.
    With interval 0 the dispatcher is event-driven.
    """

    def __init__(
        self,
        sim: Simulator,
        params: Optional[DiskParams] = None,
        poll_interval: int = 0,
        quantum_bytes: int = 64 * 1024,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.params = params or DiskParams()
        self.poll_interval = poll_interval
        self.quantum_bytes = quantum_bytes
        self.tracer = tracer or Tracer(sim, enabled=False)
        self.queues: dict[str, IOQueue] = {}
        self._dispatch_wakeup: Optional[Event] = None
        self.requests_served = 0
        sim.spawn(self._dispatch_loop(), name="io-scheduler")

    # -- registration and tuning -------------------------------------------

    def register_vm(self, vm_name: str, weight: int = 100) -> IOQueue:
        """Create the VM's disk queue."""
        if vm_name in self.queues:
            raise ValueError(f"VM {vm_name!r} already has an I/O queue")
        queue = IOQueue(vm_name, weight)
        self.queues[vm_name] = queue
        return queue

    def set_weight(self, vm_name: str, weight: int) -> int:
        """Set a VM's I/O weight absolutely (floor 1); returns the result."""
        queue = self.queues[vm_name]
        queue.weight = max(1, weight)
        self.tracer.emit("io-sched", "weight", vm=vm_name, weight=queue.weight)
        return queue.weight

    def adjust_weight(self, vm_name: str, delta: int) -> int:
        """Tune translation: shift a VM's I/O weight; returns the result."""
        return self.set_weight(vm_name, self.queues[vm_name].weight + delta)

    def set_poll_interval(self, interval: int) -> None:
        """Tune translation: adjust the dispatcher's poll time."""
        if interval < 0:
            raise ValueError("poll interval must be non-negative")
        self.poll_interval = interval

    # -- submission -----------------------------------------------------------

    def submit(self, vm_name: str, size: int, sequential: bool = False) -> Event:
        """Queue a request; the returned event fires at completion."""
        if size <= 0:
            raise ValueError(f"request size must be positive, got {size}")
        queue = self.queues[vm_name]
        request = IORequest(
            vm_name=vm_name,
            size=size,
            sequential=sequential,
            done=self.sim.event(name=f"io-{vm_name}"),
            enqueued_at=self.sim.now,
        )
        queue.pending.append(request)
        if self.poll_interval == 0 and self._dispatch_wakeup is not None:
            wakeup, self._dispatch_wakeup = self._dispatch_wakeup, None
            if not wakeup.triggered:
                wakeup.succeed()
        return request.done

    # -- dispatch -----------------------------------------------------------------

    def _backlogged(self) -> list[IOQueue]:
        return [q for q in self.queues.values() if q.pending]

    def _pick(self) -> Optional[IOQueue]:
        """Deficit round robin: replenish by weight, serve queues whose
        deficit covers their head request."""
        backlogged = self._backlogged()
        if not backlogged:
            return None
        total_weight = sum(q.weight for q in backlogged)
        # Replenish until someone can afford their head-of-line request.
        for _ in range(64):
            affordable = [q for q in backlogged if q.deficit >= q.pending[0].size]
            if affordable:
                # Among queues that can afford their head request, weight
                # decides dispatch order (latency priority); the deficit
                # accounting still bounds long-run throughput per weight.
                return max(affordable, key=lambda q: (q.weight, q.deficit))
            for queue in backlogged:
                queue.deficit += self.quantum_bytes * queue.weight / total_weight
        return backlogged[0]  # pathological sizes: just serve someone

    def _dispatch_loop(self):
        while True:
            queue = self._pick()
            if queue is None:
                if self.poll_interval > 0:
                    yield self.sim.timeout(self.poll_interval)
                else:
                    self._dispatch_wakeup = self.sim.event(name="io-idle")
                    yield self._dispatch_wakeup
                continue
            request = queue.pending.popleft()
            queue.deficit = max(0.0, queue.deficit - request.size)
            service = round(request.size / self.params.bandwidth_bytes_per_ns)
            if not request.sequential:
                service += self.params.seek_time
            yield self.sim.timeout(service)
            queue.completed += 1
            queue.total_wait += self.sim.now - request.enqueued_at - service
            self.requests_served += 1
            request.done.succeed(request)


class DiskInterface:
    """Guest-side handle: issue reads/writes and wait in iowait."""

    def __init__(self, scheduler: WeightedIOScheduler, vm: VirtualMachine,
                 weight: int = 100):
        self.scheduler = scheduler
        self.vm = vm
        self.queue = scheduler.register_vm(vm.name, weight)

    def read(self, size: int, sequential: bool = False):
        """Blocking read: ``yield from interface.read(n)`` inside a guest
        process; time waiting is attributed to guest iowait."""
        done = self.scheduler.submit(self.vm.name, size, sequential)
        result = yield from self.vm.io_wait(done)
        return result
