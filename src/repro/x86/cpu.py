"""Physical CPU model for the x86 island.

A :class:`PhysicalCPU` is a passive record: the scheduler's per-CPU loop
process drives it. It tracks the currently running VCPU, its own run queue,
and idle-time accounting.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from ..sim import Event, Process, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .vcpu import VCPU


class PhysicalCPU:
    """One core of the host processor."""

    def __init__(self, sim: Simulator, index: int):
        self.sim = sim
        self.index = index
        #: DVFS speed factor: 1.0 = nominal frequency. CPU demand is
        #: expressed at nominal speed, so wall time for a burst is
        #: ``demand / speed``. Changed via the scheduler's set_speed so
        #: in-flight work is re-timed correctly.
        self.speed = 1.0
        #: VCPU currently executing here (None while idle).
        self.current: Optional["VCPU"] = None
        #: Runnable VCPUs parked on this core, kept sorted by priority by
        #: the scheduler (head = next to run).
        self.run_queue: deque["VCPU"] = deque()
        #: The scheduler loop process bound to this core.
        self.loop: Optional[Process] = None
        #: Event the idle loop waits on; succeeding it wakes the core.
        self.idle_event: Optional[Event] = None
        self._idle_accum = 0
        self._idle_since: Optional[int] = None
        #: Busy time partitioned by the DVFS speed it ran at (the ladder
        #: keeps this map tiny). Lets the power meter integrate dynamic
        #: energy exactly across mid-window frequency changes instead of
        #: pricing the whole window at the end-of-window speed.
        self.busy_by_speed: dict[float, int] = {}

    def note_busy(self, ran: int, speed: float) -> None:
        """Scheduler hook: ``ran`` ns of execution just ran at ``speed``."""
        if ran > 0:
            self.busy_by_speed[speed] = self.busy_by_speed.get(speed, 0) + ran

    @property
    def is_idle(self) -> bool:
        """True while the core has no VCPU in context."""
        return self.current is None

    @property
    def idle_time(self) -> int:
        """Total time spent with nothing to run (including an open idle
        interval, so the value is current at any point of the run)."""
        open_interval = self.sim.now - self._idle_since if self._idle_since is not None else 0
        return self._idle_accum + open_interval

    def note_idle_start(self) -> None:
        """Scheduler hook: the core just went idle."""
        self._idle_since = self.sim.now

    def note_idle_end(self) -> None:
        """Scheduler hook: the core found work again."""
        if self._idle_since is not None:
            self._idle_accum += self.sim.now - self._idle_since
            self._idle_since = None

    def kick(self) -> None:
        """Wake the idle loop, if it is parked."""
        if self.idle_event is not None and not self.idle_event.triggered:
            self.idle_event.succeed()

    def __repr__(self) -> str:
        running = self.current.name if self.current else "idle"
        return f"<PhysicalCPU {self.index} {running} queue={len(self.run_queue)}>"
