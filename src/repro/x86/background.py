"""Guest-OS background load.

2008-era guests are never fully quiescent: periodic kernel ticks (pre-
tickless HZ=100..1000 timers), JVM and MySQL housekeeping threads, cron,
monitoring agents. This matters for scheduling studies because it keeps
VCPUs runnable beyond their request-handling work — which is what makes
run queues form and credit priorities bite. The load is a duty-cycled
burst: every ``period``, the guest burns ``duty`` of it as system time.
"""

from __future__ import annotations

from ..sim import PeriodicTask, Simulator, ms
from .vm import VirtualMachine

DEFAULT_PERIOD = ms(10)


class GuestBackgroundLoad:
    """Duty-cycled housekeeping CPU burner inside one VM."""

    def __init__(
        self,
        sim: Simulator,
        vm: VirtualMachine,
        duty: float = 0.08,
        period: int = DEFAULT_PERIOD,
        kind: str = "sys",
    ):
        if not 0.0 <= duty < 1.0:
            raise ValueError(f"duty must be in [0, 1), got {duty}")
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.vm = vm
        self.duty = duty
        self.period = period
        self.kind = kind
        self.bursts = 0
        self._burst = round(period * duty)
        if duty > 0:
            self._task = PeriodicTask(sim, period, self._tick, name=f"background-{vm.name}")

    def _tick(self) -> None:
        # Submit without waiting: if the guest is starved the backlog
        # is bounded to one burst (skip when the previous one is still
        # queued, like a timer tick coalescing).
        if self.vm.guest.queue_length < 64:
            self.vm.submit(self._burst, kind=self.kind)
            self.bursts += 1
