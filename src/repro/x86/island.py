"""The x86 scheduling island: Xen hypervisor + Dom0 + guest domains.

This is one of the two islands of the paper's prototype (§2.2): a multicore
x86 host virtualised with Xen, its resources managed by the credit
scheduler and the privileged controller domain Dom0. The island registers
a typed knob per entity, so the standard coordination mechanisms dispatch
into its native controls:

* **Tune(vm, ±delta)**        -> XenCtrl credit-weight adjustment;
* **Trigger(vm)**             -> runqueue boost (pulse);
* **Tune(disk:vm, ±delta)**   -> disk DRR weight;
* **Tune(disk, ±delta µs)**   -> I/O dispatcher poll interval;
* **Tune(mem:vm, ±delta MB)** -> balloon allocation;
* **Tune(dvfs, ±steps)**      -> platform DVFS ladder level;
* **Tune(llc:vm, ±ways)**     -> exclusive LLC way partition;
* **Tune(bw:vm, ±share)**     -> memory-bandwidth share;
* **Tune(prefetch:vm, ±pct)** -> prefetcher throttle.
"""

from __future__ import annotations

from typing import Optional

from ..platform import EntityId, Island, Knob, TriggerSpec, weight_knob
from ..sim import Simulator, Tracer
from .credit import CreditScheduler
from .diskio import DiskInterface, WeightedIOScheduler
from .llc import MAX_BW_SHARE, MemoryKnobTarget, MemoryProfile, MemorySystem
from .memory import BalloonDriver, BalloonTarget
from .params import X86Params
from .vm import VirtualMachine
from .xenctrl import MAX_WEIGHT, MIN_WEIGHT, XenCtl

#: Conventional name of the privileged controller domain.
DOM0_NAME = "Domain-0"

#: The platform DVFS ladder, slowest first (fractions of nominal speed).
DVFS_LADDER = (0.55, 0.7, 0.85, 1.0)


class X86Island(Island):
    """x86 cores under the Xen credit scheduler."""

    def __init__(
        self,
        sim: Simulator,
        params: Optional[X86Params] = None,
        name: str = "x86",
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(sim, name, tracer=tracer)
        self.params = params or X86Params()
        self.scheduler = CreditScheduler(
            sim, num_cpus=self.params.num_cpus, params=self.params.credit, tracer=self.tracer
        )
        # Dom0: unpinned, one VCPU per physical core (paper §3.1: "Dom0 ...
        # has unpinned VCPUs and can execute on all CPUs").
        self.dom0 = VirtualMachine(
            sim,
            DOM0_NAME,
            weight=self.params.dom0_weight,
            num_vcpus=self.params.num_cpus,
        )
        self.scheduler.add_domain(self.dom0)
        self.xenctl = XenCtl(sim, self.scheduler, dom0=self.dom0, tracer=self.tracer)
        self._vms: dict[str, VirtualMachine] = {DOM0_NAME: self.dom0}
        #: Authoritative DVFS ladder index. The knob's read used to infer
        #: it by nearest-match on core 0's current speed, which drifted
        #: after out-of-band ``set_cpu_speed`` calls or mid-ladder speeds
        #: (an apply(read()) round-trip was not a no-op). The island now
        #: owns the index; ``apply`` is the only thing that moves it.
        self._dvfs_index = len(DVFS_LADDER) - 1
        # The all-core DVFS ladder is a platform knob from birth: power
        # governors Tune it (±1 = one ladder step) like any other actuator.
        self.register_entity(
            EntityId(self.name, "dvfs"),
            self.scheduler,
            knob=Knob(
                kind="dvfs-level",
                unit="ladder-index",
                read=self._dvfs_level,
                apply=self._set_dvfs_level,
                minimum=0,
                maximum=len(DVFS_LADDER) - 1,
                trigger=TriggerSpec(pulse=self._dvfs_to_nominal),
            ),
        )

    # -- DVFS (all cores stepped together) ----------------------------------

    def _dvfs_level(self) -> int:
        """Current ladder index (authoritative; all cores step together)."""
        return self._dvfs_index

    def _set_dvfs_level(self, level: float) -> int:
        index = max(0, min(len(DVFS_LADDER) - 1, int(round(level))))
        speed = DVFS_LADDER[index]
        for cpu in self.scheduler.cpus:
            self.scheduler.set_cpu_speed(cpu.index, speed)
        self._dvfs_index = index
        return index

    def _dvfs_to_nominal(self) -> None:
        """Trigger translation: jump every core to nominal frequency."""
        self._set_dvfs_level(len(DVFS_LADDER) - 1)

    # -- domain lifecycle ---------------------------------------------------

    def create_vm(
        self, name: str, weight: Optional[int] = None, num_vcpus: int = 1, memory_mb: int = 256
    ) -> VirtualMachine:
        """Boot a guest domain and register it for coordination."""
        if name in self._vms:
            raise ValueError(f"domain {name!r} already exists")
        vm = VirtualMachine(
            self.sim,
            name,
            weight=weight if weight is not None else self.params.credit.default_weight,
            num_vcpus=num_vcpus,
            memory_mb=memory_mb,
        )
        self.scheduler.add_domain(vm)
        self._vms[name] = vm
        self.register_entity(
            EntityId(self.name, name),
            vm,
            knob=Knob(
                kind="credit-weight",
                unit="credits",
                read=lambda vm=vm: vm.weight,
                apply=lambda value, vm=vm: self.xenctl.set_weight(vm, int(value)),
                minimum=MIN_WEIGHT,
                maximum=MAX_WEIGHT,
                trigger=TriggerSpec(pulse=lambda vm=vm: self.xenctl.boost(vm)),
            ),
        )
        self.tracer.emit(self.name, "vm-created", vm=name, weight=vm.weight)
        return vm

    def vm(self, name: str) -> VirtualMachine:
        """Look up a domain by name (including Dom0)."""
        return self._vms[name]

    def vms(self) -> list[VirtualMachine]:
        """All domains, Dom0 first."""
        return list(self._vms.values())

    def guest_vms(self) -> list[VirtualMachine]:
        """All domains except Dom0."""
        return [vm for name, vm in self._vms.items() if name != DOM0_NAME]

    # -- optional shared disk ----------------------------------------------

    def attach_disk(self, scheduler: WeightedIOScheduler) -> None:
        """Attach a :class:`~repro.x86.diskio.WeightedIOScheduler`.

        Per-VM I/O queues created afterwards register as tunable entities
        (``disk:<vm>``); the scheduler itself registers as ``disk``, whose
        Tune delta adjusts the dispatcher's poll interval in microseconds
        — literally the paper's "poll time adjustments in an I/O
        scheduler" (§3.3).
        """
        self.disk = scheduler
        self.register_entity(
            EntityId(self.name, "disk"),
            scheduler,
            knob=Knob(
                kind="io-poll-interval",
                unit="ns",
                read=lambda: scheduler.poll_interval,
                apply=self._apply_poll_interval,
                minimum=0,
                step=1000,  # Tune deltas are in microseconds
            ),
        )

    def _apply_poll_interval(self, value: float) -> int:
        interval = max(0, int(value))
        self.disk.set_poll_interval(interval)
        return interval

    def create_disk_interface(self, vm: VirtualMachine, weight: int = 100) -> DiskInterface:
        """Give a domain a queue on the shared disk (requires attach_disk)."""
        if getattr(self, "disk", None) is None:
            raise RuntimeError("no disk attached to this island")
        interface = DiskInterface(self.disk, vm, weight=weight)
        queue = interface.queue
        self.register_entity(
            EntityId(self.name, f"disk:{vm.name}"),
            queue,
            knob=weight_knob(
                kind="io-weight",
                unit="share",
                read=lambda queue=queue: queue.weight,
                apply=lambda value, name=vm.name: self.disk.set_weight(name, int(value)),
            ),
        )
        return interface

    # -- optional shared LLC + memory bandwidth --------------------------------

    def attach_memory_system(self, system: MemorySystem) -> None:
        """Attach a :class:`~repro.x86.llc.MemorySystem` (shared LLC +
        bandwidth pipe). The system reads the island's DVFS speed so that
        memory stalls stay frequency-invariant in wall time."""
        self.memory_system = system
        system.bind_speed(lambda: self.scheduler.cpus[0].speed)

    def memory_manage(
        self,
        vm: VirtualMachine,
        profile: Optional[MemoryProfile] = None,
        ways: int = 4,
        bw_share: int = 100,
        prefetch_throttle: int = 0,
    ) -> None:
        """Put a domain under the shared memory model and expose its three
        uncore controls as typed knobs:

        * ``llc:<vm>``      — exclusive LLC way partition (``llc-ways``);
        * ``bw:<vm>``       — relative bandwidth share (``bw-share``);
        * ``prefetch:<vm>`` — prefetcher throttle percent
          (``prefetch-throttle``).
        """
        system = getattr(self, "memory_system", None)
        if system is None:
            raise RuntimeError("no memory system attached to this island")
        system.manage(
            vm,
            profile,
            ways=ways,
            bw_share=bw_share,
            prefetch_throttle=prefetch_throttle,
        )
        name = vm.name
        self.register_entity(
            EntityId(self.name, f"llc:{name}"),
            MemoryKnobTarget(system, name, "llc-ways"),
            knob=Knob(
                kind="llc-ways",
                unit="ways",
                read=lambda name=name: system.ways(name),
                apply=lambda value, name=name: system.set_ways(name, int(value)),
                minimum=1,
                maximum=system.params.total_ways,
            ),
        )
        self.register_entity(
            EntityId(self.name, f"bw:{name}"),
            MemoryKnobTarget(system, name, "bw-share"),
            knob=Knob(
                kind="bw-share",
                unit="share",
                read=lambda name=name: system.bw_share(name),
                apply=lambda value, name=name: system.set_bw_share(name, int(value)),
                minimum=1,
                maximum=MAX_BW_SHARE,
            ),
        )
        self.register_entity(
            EntityId(self.name, f"prefetch:{name}"),
            MemoryKnobTarget(system, name, "prefetch-throttle"),
            knob=Knob(
                kind="prefetch-throttle",
                unit="percent",
                read=lambda name=name: system.prefetch_throttle(name),
                apply=lambda value, name=name: system.set_prefetch_throttle(
                    name, int(value)
                ),
                minimum=0,
                maximum=100,
            ),
        )
        self.tracer.emit(
            self.name, "memory-managed", vm=name,
            ways=system.ways(name), bw_share=system.bw_share(name),
        )

    # -- optional balloon driver ----------------------------------------------

    def attach_balloon(self, driver: BalloonDriver) -> None:
        """Attach a :class:`~repro.x86.memory.BalloonDriver`."""
        self.balloon = driver

    def balloon_manage(self, vm: VirtualMachine, working_set_mb=None) -> None:
        """Put a domain under balloon management and expose its memory
        allocation as the tunable entity ``mem:<vm>`` (delta in MB)."""
        if getattr(self, "balloon", None) is None:
            raise RuntimeError("no balloon driver attached to this island")
        self.balloon.manage(vm, working_set_mb)
        self.register_entity(
            EntityId(self.name, f"mem:{vm.name}"),
            BalloonTarget(self.balloon, vm.name),
            knob=Knob(
                kind="memory-allocation",
                unit="MB",
                read=lambda vm=vm: vm.memory_mb,
                # adjust() enforces the dynamic ceiling (free physical
                # memory), so the knob only pins the static floor.
                apply=lambda value, vm=vm: self.balloon.adjust(
                    vm.name, int(value) - vm.memory_mb
                ),
                minimum=self.balloon.min_allocation_mb,
            ),
        )
