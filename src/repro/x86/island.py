"""The x86 scheduling island: Xen hypervisor + Dom0 + guest domains.

This is one of the two islands of the paper's prototype (§2.2): a multicore
x86 host virtualised with Xen, its resources managed by the credit
scheduler and the privileged controller domain Dom0. The island translates
the standard coordination mechanisms into its native knobs:

* **Tune(vm, ±delta)** -> XenCtrl credit-weight adjustment;
* **Trigger(vm)**      -> runqueue boost.
"""

from __future__ import annotations

from typing import Optional

from ..platform import EntityId, Island
from ..sim import Simulator, Tracer
from .credit import CreditScheduler
from .params import X86Params
from .vm import VirtualMachine
from .xenctrl import XenCtl

#: Conventional name of the privileged controller domain.
DOM0_NAME = "Domain-0"


class X86Island(Island):
    """x86 cores under the Xen credit scheduler."""

    def __init__(
        self,
        sim: Simulator,
        params: Optional[X86Params] = None,
        name: str = "x86",
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(sim, name, tracer=tracer)
        self.params = params or X86Params()
        self.scheduler = CreditScheduler(
            sim, num_cpus=self.params.num_cpus, params=self.params.credit, tracer=self.tracer
        )
        # Dom0: unpinned, one VCPU per physical core (paper §3.1: "Dom0 ...
        # has unpinned VCPUs and can execute on all CPUs").
        self.dom0 = VirtualMachine(
            sim,
            DOM0_NAME,
            weight=self.params.dom0_weight,
            num_vcpus=self.params.num_cpus,
        )
        self.scheduler.add_domain(self.dom0)
        self.xenctl = XenCtl(sim, self.scheduler, dom0=self.dom0, tracer=self.tracer)
        self._vms: dict[str, VirtualMachine] = {DOM0_NAME: self.dom0}

    # -- domain lifecycle ---------------------------------------------------

    def create_vm(
        self, name: str, weight: Optional[int] = None, num_vcpus: int = 1, memory_mb: int = 256
    ) -> VirtualMachine:
        """Boot a guest domain and register it for coordination."""
        if name in self._vms:
            raise ValueError(f"domain {name!r} already exists")
        vm = VirtualMachine(
            self.sim,
            name,
            weight=weight if weight is not None else self.params.credit.default_weight,
            num_vcpus=num_vcpus,
            memory_mb=memory_mb,
        )
        self.scheduler.add_domain(vm)
        self._vms[name] = vm
        self.register_entity(EntityId(self.name, name), vm)
        self.tracer.emit(self.name, "vm-created", vm=name, weight=vm.weight)
        return vm

    def vm(self, name: str) -> VirtualMachine:
        """Look up a domain by name (including Dom0)."""
        return self._vms[name]

    def vms(self) -> list[VirtualMachine]:
        """All domains, Dom0 first."""
        return list(self._vms.values())

    def guest_vms(self) -> list[VirtualMachine]:
        """All domains except Dom0."""
        return [vm for name, vm in self._vms.items() if name != DOM0_NAME]

    # -- optional shared disk ----------------------------------------------

    def attach_disk(self, scheduler) -> None:
        """Attach a :class:`~repro.x86.diskio.WeightedIOScheduler`.

        Per-VM I/O queues created afterwards register as tunable entities
        (``disk:<vm>``); the scheduler itself registers as ``disk``, whose
        Tune delta adjusts the dispatcher's poll interval in microseconds
        — literally the paper's "poll time adjustments in an I/O
        scheduler" (§3.3).
        """
        self.disk = scheduler
        self.register_entity(EntityId(self.name, "disk"), scheduler)

    def create_disk_interface(self, vm: VirtualMachine, weight: int = 100):
        """Give a domain a queue on the shared disk (requires attach_disk)."""
        from .diskio import DiskInterface  # local import to avoid a cycle

        if getattr(self, "disk", None) is None:
            raise RuntimeError("no disk attached to this island")
        interface = DiskInterface(self.disk, vm, weight=weight)
        self.register_entity(EntityId(self.name, f"disk:{vm.name}"), interface.queue)
        return interface

    # -- optional balloon driver ----------------------------------------------

    def attach_balloon(self, driver) -> None:
        """Attach a :class:`~repro.x86.memory.BalloonDriver`."""
        self.balloon = driver

    def balloon_manage(self, vm: VirtualMachine, working_set_mb=None) -> None:
        """Put a domain under balloon management and expose its memory
        allocation as the tunable entity ``mem:<vm>`` (delta in MB)."""
        from .memory import BalloonTarget  # local import to avoid a cycle

        if getattr(self, "balloon", None) is None:
            raise RuntimeError("no balloon driver attached to this island")
        self.balloon.manage(vm, working_set_mb)
        self.register_entity(
            EntityId(self.name, f"mem:{vm.name}"), BalloonTarget(self.balloon, vm.name)
        )

    # -- coordination mechanism translation -----------------------------------

    def _resolve(self, entity_id: EntityId) -> VirtualMachine:
        entity = self.entity(entity_id)
        if not isinstance(entity, VirtualMachine):
            raise TypeError(f"{entity_id} is not a VM on island {self.name!r}")
        return entity

    def apply_tune(self, entity_id: EntityId, delta: int) -> None:
        """Tune -> native knob: credit weight for VMs, scheduler weight
        for disk I/O queues."""
        from .diskio import IOQueue, WeightedIOScheduler  # avoid a cycle

        entity = self.entity(entity_id)
        if isinstance(entity, IOQueue):
            applied = self.disk.adjust_weight(entity.vm_name, delta)
            self.tracer.emit(
                self.name, "tune-applied", io_queue=entity.vm_name,
                delta=delta, weight=applied,
            )
            return
        if isinstance(entity, WeightedIOScheduler):
            # Delta is in microseconds of poll interval (+/-).
            new_interval = max(0, entity.poll_interval + delta * 1000)
            entity.set_poll_interval(new_interval)
            self.tracer.emit(
                self.name, "tune-applied", io_poll_interval=new_interval, delta=delta
            )
            return
        from .memory import BalloonTarget  # local import to avoid a cycle

        if isinstance(entity, BalloonTarget):
            applied = entity.driver.adjust(entity.vm_name, delta)
            self.tracer.emit(
                self.name, "tune-applied", balloon=entity.vm_name, size_mb=applied
            )
            return
        vm = self._resolve(entity_id)
        applied = self.xenctl.adjust_weight(vm, delta)
        self.tracer.emit(self.name, "tune-applied", vm=vm.name, delta=delta, weight=applied)

    def apply_trigger(self, entity_id: EntityId) -> None:
        """Trigger -> immediate runqueue boost through XenCtrl."""
        vm = self._resolve(entity_id)
        self.xenctl.boost(vm)
        self.tracer.emit(self.name, "trigger-applied", vm=vm.name)
