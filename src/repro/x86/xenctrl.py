"""XenCtrl: the Dom0 user-space tuning utility (paper §2.2).

"The controller domain hosts a user-space utility 'XenCtrl interface' to
tune the credit scheduler behavior and adjust processor allocation to
individual guest VMs." Applying an adjustment costs Dom0 a little system
CPU (the hypercall + tool overhead), which matters because coordination
actions compete with the packet-relay work Dom0 also performs.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator, Tracer, us
from .credit import CreditScheduler
from .vm import VirtualMachine

#: CPU cost charged to Dom0 per tuning operation (tool + hypercall).
TUNE_CPU_COST = us(30)

#: Weight clamp range; Xen accepts 1..65535 but sane configs stay narrower.
MIN_WEIGHT = 16
MAX_WEIGHT = 4096


class XenCtl:
    """Weight/cap/boost control interface running inside Dom0."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: CreditScheduler,
        dom0: Optional[VirtualMachine] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.scheduler = scheduler
        self.dom0 = dom0
        self.tracer = tracer or Tracer(sim, enabled=False)

    def _charge_dom0(self) -> None:
        if self.dom0 is not None:
            self.dom0.submit(TUNE_CPU_COST, kind="sys")

    def set_weight(self, vm: VirtualMachine, weight: int) -> int:
        """Set a domain's weight (clamped); returns the applied value."""
        applied = max(MIN_WEIGHT, min(MAX_WEIGHT, weight))
        self._charge_dom0()
        self.scheduler.set_weight(vm, applied)
        self.tracer.emit("xenctl", "set-weight", vm=vm.name, weight=applied)
        return applied

    def adjust_weight(self, vm: VirtualMachine, delta: int) -> int:
        """Adjust a domain's weight by ``delta`` (the Tune translation)."""
        return self.set_weight(vm, vm.weight + delta)

    def set_cap(self, vm: VirtualMachine, cap_percent: int) -> None:
        """Set a domain's CPU cap in percent of one core (0 = uncapped)."""
        self._charge_dom0()
        self.scheduler.set_cap(vm, cap_percent)

    def boost(self, vm: VirtualMachine) -> None:
        """Runqueue-boost a domain (the Trigger translation)."""
        self._charge_dom0()
        self.scheduler.boost(vm)
