"""Shared last-level cache and memory-bandwidth model for the x86 island.

The paper's thesis is that resources must be managed *across* types, not
per type; DVFS alone cannot see that a guest is stalled on the memory
system. This module models the two shared uncore resources that
coordinated energy/QoS policies steer (Nejat et al., *Coordinated
Management of DVFS and Cache Partitioning under QoS Constraints*; CBP:
cache + bandwidth partitioning + prefetch throttling):

* a **shared LLC** partitioned into ways (Intel CAT-style): each managed
  domain owns an exclusive way allocation; fewer ways than its profiled
  working set raises its miss ratio;
* a **memory-bandwidth pipe** shared by all domains' miss (and prefetch)
  traffic, arbitrated weighted-max-min by per-domain bandwidth shares
  (Intel MBA-style); a domain demanding more than its allocation has its
  memory-bound time stretched;
* a **prefetcher** per domain whose aggressiveness hides miss latency
  while bandwidth is plentiful but *wastes* bandwidth when the pipe is
  contended — the CBP throttling trade-off.

The model folds into execution exactly like paging pressure does: a
service-time multiplier applied to submitted CPU demand
(:attr:`~repro.x86.vm.VirtualMachine.demand_inflation`). The memory-bound
component is scaled by the current DVFS speed before being added, so in
*wall-clock* terms memory stalls are frequency-invariant: lowering the
frequency stretches only the compute-bound part of a burst. That is the
physical fact coordinated energy policies exploit — a cache/bandwidth
allocation that removes stalls buys QoS slack that DVFS can then convert
into energy at small performance cost.

Nothing here is constructed by default: an island without an attached
:class:`MemorySystem` (and experiments that never attach one) behaves
bit-identically to a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import Tracer
from .vm import VirtualMachine

#: Default LLC size in ways (a 2008-era 16-way inclusive LLC).
DEFAULT_TOTAL_WAYS = 16

#: Default memory-pipe capacity in GB/s (one DDR2/3 channel's worth).
DEFAULT_CAPACITY_GBPS = 6.0

#: Upper bound on a domain's relative bandwidth share.
MAX_BW_SHARE = 1024


@dataclass(frozen=True, slots=True)
class MemoryProfile:
    """Offline-profiled memory behaviour of one domain's workload.

    Mirrors the offline profiles the paper uses to parameterise its
    coordination actions (§3.1): how memory-bound the workload is, how
    much LLC it wants, and how much traffic its misses generate.
    """

    #: Fraction of CPU demand that is memory-bound (stalls on the
    #: memory system when it misses the LLC).
    mem_fraction: float = 0.3
    #: LLC ways at which the workload's miss ratio bottoms out.
    ways_needed: int = 8
    #: Miss-ratio floor with a full way allocation (compulsory misses).
    base_miss: float = 0.1
    #: Memory traffic at miss ratio 1.0 (GB/s).
    bw_demand_gbps: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.mem_fraction <= 1.0:
            raise ValueError(f"mem_fraction must be in [0,1], got {self.mem_fraction}")
        if self.ways_needed < 1:
            raise ValueError(f"ways_needed must be >= 1, got {self.ways_needed}")
        if not 0.0 <= self.base_miss <= 1.0:
            raise ValueError(f"base_miss must be in [0,1], got {self.base_miss}")
        if self.bw_demand_gbps < 0:
            raise ValueError(f"bw_demand_gbps must be >= 0, got {self.bw_demand_gbps}")

    def miss_ratio(self, ways: int) -> float:
        """LLC miss ratio with ``ways`` allocated (linear stack-distance
        ramp down to the floor at ``ways_needed``)."""
        if ways >= self.ways_needed:
            return self.base_miss
        starvation = 1.0 - ways / self.ways_needed
        return self.base_miss + (1.0 - self.base_miss) * starvation


@dataclass(frozen=True, slots=True)
class MemorySystemParams:
    """Shape of the shared uncore: LLC ways, pipe capacity, penalties."""

    total_ways: int = DEFAULT_TOTAL_WAYS
    capacity_gbps: float = DEFAULT_CAPACITY_GBPS
    #: Stall-time multiplier weight of a fully-missing memory-bound burst
    #: (service time of the memory-bound fraction scales by 1 + this).
    miss_penalty: float = 3.0
    #: Fraction of miss stalls an unthrottled prefetcher hides (when the
    #: pipe has headroom to feed it).
    prefetch_hide: float = 0.6
    #: Extra traffic an unthrottled prefetcher adds on top of demand
    #: misses (useless speculative fetches included).
    prefetch_waste: float = 0.6

    def __post_init__(self) -> None:
        if self.total_ways < 2:
            raise ValueError(f"total_ways must be >= 2, got {self.total_ways}")
        if self.capacity_gbps <= 0:
            raise ValueError(f"capacity_gbps must be positive, got {self.capacity_gbps}")


@dataclass(slots=True)
class _DomainState:
    """Mutable per-domain allocation state."""

    vm: VirtualMachine
    profile: MemoryProfile
    ways: int
    bw_share: int
    #: Prefetch throttle percent: 0 = fully aggressive, 100 = prefetch off.
    prefetch_throttle: int
    #: Inflation chained from a previously-installed hook (ballooning).
    chained: Optional[Callable[[], float]] = None


@dataclass(frozen=True, slots=True)
class MemoryKnobTarget:
    """Coordination entity for one domain's llc/bw/prefetch control."""

    system: "MemorySystem"
    vm_name: str
    control: str  #: ``llc-ways`` | ``bw-share`` | ``prefetch-throttle``


class MemorySystem:
    """The shared LLC + bandwidth pipe, and its per-domain allocations.

    Domains are put under management with :meth:`manage`; their effective
    service time then reflects the current partition through the VM's
    ``demand_inflation`` hook. All three controls are exposed as typed
    knobs by :meth:`~repro.x86.island.X86Island.memory_manage`.
    """

    def __init__(
        self,
        params: Optional[MemorySystemParams] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.params = params or MemorySystemParams()
        self.tracer = tracer
        self._domains: dict[str, _DomainState] = {}
        #: Current DVFS speed source (bound by the island on attach).
        self._speed: Callable[[], float] = lambda: 1.0
        self.repartitions = 0

    # -- membership ---------------------------------------------------------

    def bind_speed(self, speed: Callable[[], float]) -> None:
        """Install the island's DVFS speed source (used to keep memory
        stalls frequency-invariant in wall time)."""
        self._speed = speed

    def manage(
        self,
        vm: VirtualMachine,
        profile: Optional[MemoryProfile] = None,
        ways: int = 4,
        bw_share: int = 100,
        prefetch_throttle: int = 0,
    ) -> None:
        """Put a domain's memory behaviour under the shared model.

        ``ways`` is the initial exclusive LLC partition (clamped to what
        is free), ``bw_share`` the relative bandwidth share, and
        ``prefetch_throttle`` the initial prefetcher throttle percent.
        Any previously-installed ``demand_inflation`` hook (the balloon
        driver's paging pressure) keeps applying multiplicatively.
        """
        if vm.name in self._domains:
            raise ValueError(f"domain {vm.name!r} already memory-managed")
        if self.free_ways < 1:
            raise ValueError("no LLC ways left to allocate")
        ways = max(1, min(ways, self.free_ways))
        state = _DomainState(
            vm=vm,
            profile=profile or MemoryProfile(),
            ways=ways,
            bw_share=max(1, min(MAX_BW_SHARE, bw_share)),
            prefetch_throttle=max(0, min(100, prefetch_throttle)),
            chained=vm.demand_inflation,
        )
        self._domains[vm.name] = state
        vm.demand_inflation = self._make_inflation(state)

    def _make_inflation(self, state: _DomainState):
        def inflation() -> float:
            factor = self.inflation(state.vm.name)
            if state.chained is not None:
                factor *= state.chained()
            return factor

        return inflation

    def managed(self) -> list[str]:
        """Managed domain names, in management order."""
        return list(self._domains)

    @property
    def free_ways(self) -> int:
        """LLC ways not allocated to any managed domain."""
        return self.params.total_ways - sum(s.ways for s in self._domains.values())

    # -- the three Tune translations ---------------------------------------

    def set_ways(self, vm_name: str, ways: int) -> int:
        """Resize a domain's exclusive way partition; returns the applied
        size. Growth is limited by unallocated ways (partitions never
        overlap); the floor is one way."""
        state = self._domains[vm_name]
        available = state.ways + self.free_ways
        applied = max(1, min(int(ways), available))
        if applied != state.ways:
            state.ways = applied
            self.repartitions += 1
            if self.tracer is not None:
                self.tracer.emit("llc", "repartition", vm=vm_name, ways=applied)
        return applied

    def set_bw_share(self, vm_name: str, share: int) -> int:
        """Set a domain's relative bandwidth share (weighted max-min)."""
        state = self._domains[vm_name]
        applied = max(1, min(MAX_BW_SHARE, int(share)))
        if applied != state.bw_share:
            state.bw_share = applied
            if self.tracer is not None:
                self.tracer.emit("llc", "bw-share", vm=vm_name, share=applied)
        return applied

    def set_prefetch_throttle(self, vm_name: str, percent: int) -> int:
        """Throttle a domain's prefetcher (0 = aggressive, 100 = off)."""
        state = self._domains[vm_name]
        applied = max(0, min(100, int(percent)))
        if applied != state.prefetch_throttle:
            state.prefetch_throttle = applied
            if self.tracer is not None:
                self.tracer.emit("llc", "prefetch-throttle", vm=vm_name, percent=applied)
        return applied

    def ways(self, vm_name: str) -> int:
        return self._domains[vm_name].ways

    def bw_share(self, vm_name: str) -> int:
        return self._domains[vm_name].bw_share

    def prefetch_throttle(self, vm_name: str) -> int:
        return self._domains[vm_name].prefetch_throttle

    # -- the model ----------------------------------------------------------

    def _traffic_gbps(self, state: _DomainState, ways: int, throttle: int) -> float:
        """Memory traffic: demand misses plus speculative prefetches."""
        aggressiveness = 1.0 - throttle / 100.0
        miss = state.profile.miss_ratio(ways)
        return (
            state.profile.bw_demand_gbps
            * miss
            * (1.0 + aggressiveness * self.params.prefetch_waste)
        )

    def _allocations(
        self, overrides: Optional[dict[str, tuple[int, int, int]]] = None
    ) -> dict[str, tuple[float, float]]:
        """Weighted max-min bandwidth allocation: ``{vm: (demand, got)}``.

        ``overrides`` maps a domain to hypothetical
        ``(ways, bw_share, prefetch_throttle)`` so policies can evaluate
        candidate moves without mutating state.
        """

        def settings(name: str, state: _DomainState) -> tuple[int, int, int]:
            if overrides is not None and name in overrides:
                return overrides[name]
            return state.ways, state.bw_share, state.prefetch_throttle

        demands: dict[str, float] = {}
        shares: dict[str, int] = {}
        for name, state in self._domains.items():
            ways, share, throttle = settings(name, state)
            demands[name] = self._traffic_gbps(state, ways, throttle)
            shares[name] = share

        granted: dict[str, float] = {}
        unsatisfied = [n for n in self._domains if demands[n] > 0]
        capacity = self.params.capacity_gbps
        for name in self._domains:
            if demands[name] <= 0:
                granted[name] = 0.0
        # Weighted max-min: repeatedly give every still-unsatisfied domain
        # its share of the remaining capacity; domains whose demand fits
        # take exactly their demand and leave the contention set. At most
        # one domain leaves per round, so this terminates in <= n rounds.
        while unsatisfied:
            total_share = sum(shares[n] for n in unsatisfied)
            fair = {n: capacity * shares[n] / total_share for n in unsatisfied}
            done = [n for n in unsatisfied if demands[n] <= fair[n]]
            if not done:
                for n in unsatisfied:
                    granted[n] = fair[n]
                break
            for n in done:
                granted[n] = demands[n]
                capacity -= demands[n]
                unsatisfied.remove(n)
        return {n: (demands[n], granted[n]) for n in self._domains}

    def _stall(
        self,
        state: _DomainState,
        ways: int,
        throttle: int,
        demand: float,
        got: float,
    ) -> float:
        """Memory-stall factor of one domain under the given allocation."""
        profile = state.profile
        miss = profile.miss_ratio(ways)
        slowdown = demand / got if demand > got > 0 else 1.0
        # Prefetch hides stalls only to the extent the pipe feeds it.
        feed = min(1.0, got / demand) if demand > 0 else 1.0
        aggressiveness = 1.0 - throttle / 100.0
        effective_miss = miss * (1.0 - aggressiveness * self.params.prefetch_hide * feed)
        return profile.mem_fraction * effective_miss * self.params.miss_penalty * slowdown

    def inflation(self, vm_name: str) -> float:
        """Current service-time multiplier of one managed domain.

        The stall component is scaled by the current DVFS speed so that
        memory-bound wall time is frequency-invariant: with
        ``demand' = demand * (1 + stall * speed)``, wall time is
        ``demand * (1/speed + stall)`` — only the compute part stretches
        when the island is slowed down.
        """
        state = self._domains[vm_name]
        demand, got = self._allocations()[vm_name]
        stall = self._stall(state, state.ways, state.prefetch_throttle, demand, got)
        return 1.0 + stall * self._speed()

    def predict_stall(
        self,
        vm_name: str,
        ways: Optional[int] = None,
        bw_share: Optional[int] = None,
        prefetch_throttle: Optional[int] = None,
    ) -> float:
        """Hypothetical stall factor of ``vm_name`` under overridden
        settings (speed-independent; what greedy policies compare)."""
        state = self._domains[vm_name]
        hyp = (
            state.ways if ways is None else ways,
            state.bw_share if bw_share is None else bw_share,
            state.prefetch_throttle if prefetch_throttle is None else prefetch_throttle,
        )
        allocations = self._allocations(overrides={vm_name: hyp})
        demand, got = allocations[vm_name]
        return self._stall(state, hyp[0], hyp[2], demand, got)

    def pipe_congested(self) -> bool:
        """Whether total traffic demand exceeds the pipe capacity."""
        allocations = self._allocations()
        total_demand = sum(demand for demand, _got in allocations.values())
        return total_demand > self.params.capacity_gbps

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-domain allocation and model state (for reports/tests)."""
        allocations = self._allocations()
        out: dict[str, dict[str, float]] = {}
        for name, state in self._domains.items():
            demand, got = allocations[name]
            out[name] = {
                "ways": state.ways,
                "bw_share": state.bw_share,
                "prefetch_throttle": state.prefetch_throttle,
                "miss_ratio": state.profile.miss_ratio(state.ways),
                "bw_demand_gbps": demand,
                "bw_granted_gbps": got,
                "stall": self._stall(
                    state, state.ways, state.prefetch_throttle, demand, got
                ),
            }
        return out
