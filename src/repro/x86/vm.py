"""Virtual machines (Xen domains) on the x86 island.

A :class:`VirtualMachine` owns a guest kernel (its work queue and
accounting) and one or more VCPUs. Application models interact with a VM
exclusively through :meth:`execute` (burn CPU), :meth:`io_wait` (account
blocking on I/O), and the network interface attached by the island.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..sim import Event, Simulator
from .guest import GuestKernel, WorkItem
from .vcpu import VCPU

if TYPE_CHECKING:  # pragma: no cover
    from .credit import CreditScheduler


class VirtualMachine:
    """A Xen domain: guest kernel + VCPUs + scheduling weight."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        weight: int = 256,
        num_vcpus: int = 1,
        memory_mb: int = 256,
    ):
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if num_vcpus <= 0:
            raise ValueError(f"num_vcpus must be positive, got {num_vcpus}")
        self.sim = sim
        self.name = name
        self.weight = weight
        #: Optional utilisation cap in percent of one core (0 = uncapped),
        #: matching Xen's ``cap`` knob. Enforced by the scheduler.
        self.cap_percent = 0
        self.memory_mb = memory_mb
        #: Memory the guest actively touches; above the allocation it pages
        #: (see :mod:`repro.x86.memory`). Defaults to "fits in RAM".
        self.working_set_mb = memory_mb
        #: Optional hook returning a service-time multiplier applied to
        #: submitted CPU demands (installed by the balloon driver to model
        #: paging pressure).
        self.demand_inflation = None
        self.guest = GuestKernel(sim, name)
        self.vcpus = [VCPU(self, i) for i in range(num_vcpus)]
        self._scheduler: Optional["CreditScheduler"] = None

    # -- wiring ------------------------------------------------------------

    def attach_scheduler(self, scheduler: "CreditScheduler") -> None:
        """Called by the scheduler when the domain is admitted."""
        self._scheduler = scheduler
        self.guest.on_work_available = self._work_arrived

    def _work_arrived(self) -> None:
        if self._scheduler is None:
            raise RuntimeError(f"VM {self.name!r} received work before being scheduled")
        # Wake only as many VCPUs as there are unclaimed items: a single
        # serial workload (one kernel thread) must occupy one VCPU, not
        # keep every VCPU of the domain hot.
        from .vcpu import VCPUState  # noqa: PLC0415 — avoids cycle at module load

        needed = sum(1 for item in self.guest._items if item.owner is None)
        for vcpu in self.vcpus:
            if needed <= 0:
                break
            if vcpu.state is VCPUState.BLOCKED:
                self._scheduler.wake(vcpu)
                needed -= 1

    # -- API used by application models --------------------------------------

    def execute(self, demand: int, kind: str = "user") -> Event:
        """Queue ``demand`` ns of CPU work; the event fires when served."""
        return self.submit(demand, kind).done

    def submit(self, demand: int, kind: str = "user") -> WorkItem:
        """Like :meth:`execute` but returns the full work item."""
        if self.demand_inflation is not None:
            demand = round(demand * self.demand_inflation())
        return self.guest.submit(demand, kind)

    def io_wait(self, event: Event) -> Generator:
        """Wait for ``event`` while accounting the time as guest iowait.

        Use as ``result = yield from vm.io_wait(some_event)``.
        """
        self.guest.io_begin()
        try:
            result = yield event
        finally:
            self.guest.io_end()
        return result

    # -- metrics --------------------------------------------------------------

    @property
    def accounting(self):
        """Guest time accounting (user/sys/iowait/steal counters)."""
        return self.guest.accounting

    def cpu_time(self) -> int:
        """Total CPU time consumed across all VCPUs."""
        return sum(v.runtime for v in self.vcpus)

    def __repr__(self) -> str:
        return f"<VM {self.name} weight={self.weight} vcpus={len(self.vcpus)}>"
