"""The x86 island: Xen credit scheduler, domains, Dom0 and XenCtrl."""

from .cpu import PhysicalCPU
from .credit import CreditScheduler
from .guest import GuestAccounting, GuestKernel, WorkItem
from .island import DOM0_NAME, DVFS_LADDER, X86Island
from .llc import (
    MAX_BW_SHARE,
    MemoryKnobTarget,
    MemoryProfile,
    MemorySystem,
    MemorySystemParams,
)
from .params import CreditParams, X86Params
from .vcpu import VCPU, Priority, VCPUState
from .vm import VirtualMachine
from .xenctrl import MAX_WEIGHT, MIN_WEIGHT, TUNE_CPU_COST, XenCtl

__all__ = [
    "CreditParams",
    "CreditScheduler",
    "DOM0_NAME",
    "DVFS_LADDER",
    "MAX_BW_SHARE",
    "MemoryKnobTarget",
    "MemoryProfile",
    "MemorySystem",
    "MemorySystemParams",
    "GuestAccounting",
    "GuestKernel",
    "MAX_WEIGHT",
    "MIN_WEIGHT",
    "PhysicalCPU",
    "Priority",
    "TUNE_CPU_COST",
    "VCPU",
    "VCPUState",
    "VirtualMachine",
    "WorkItem",
    "X86Island",
    "X86Params",
    "XenCtl",
]
