"""The guest side of a virtual machine: work items and the guest kernel.

CPU work inside a VM is modelled as *work items* — service demands in
nanoseconds, tagged ``user`` or ``sys`` so guest-visible utilisation splits
(user / system / iowait) can be reported the way the paper's Figure 5
discussion does. The guest kernel serves work FIFO whenever the hypervisor
gives one of its VCPUs processor time; with several VCPUs, items are
*claimed* so two VCPUs never serve the same item.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Event, Simulator


class WorkItem:
    """One burst of CPU demand inside a guest."""

    __slots__ = ("demand", "remaining", "kind", "done", "enqueued_at", "started_at", "owner")

    def __init__(self, sim: Simulator, demand: int, kind: str):
        if demand < 0:
            raise ValueError(f"negative CPU demand {demand}")
        if kind not in ("user", "sys"):
            raise ValueError(f"work kind must be 'user' or 'sys', got {kind!r}")
        self.demand = demand
        self.remaining = demand
        self.kind = kind
        #: Fires when the item has received its full demand.
        self.done: Event = sim.event(name=f"work-done({kind},{demand})")
        self.enqueued_at = sim.now
        self.started_at: Optional[int] = None
        #: Name of the VCPU currently serving this item (None = unclaimed).
        self.owner: Optional[str] = None

    def __repr__(self) -> str:
        return f"<WorkItem {self.kind} {self.remaining}/{self.demand}ns owner={self.owner}>"


class GuestAccounting:
    """Guest-visible time accounting for one VM.

    ``user``/``sys`` accumulate while VCPUs run those work kinds; ``iowait``
    accumulates while the VM is idle *and* has outstanding I/O (tracked by
    :meth:`GuestKernel.io_begin` / :meth:`GuestKernel.io_end`); ``steal``
    accumulates while runnable but not running.
    """

    __slots__ = ("user", "sys", "iowait", "steal")

    def __init__(self):
        self.user = 0
        self.sys = 0
        self.iowait = 0
        self.steal = 0

    @property
    def busy(self) -> int:
        """Total CPU time consumed (user + sys)."""
        return self.user + self.sys

    def snapshot(self) -> dict[str, int]:
        """Copy of all counters, for windowed sampling."""
        return {"user": self.user, "sys": self.sys, "iowait": self.iowait, "steal": self.steal}


class GuestKernel:
    """Work queue of a VM plus idle/I/O bookkeeping."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self._items: list[WorkItem] = []
        self.accounting = GuestAccounting()
        self._outstanding_io = 0
        self._idle_since: Optional[int] = sim.now
        #: Invoked with no arguments whenever work arrives at an empty
        #: queue; the hypervisor hooks this to wake the VM's VCPUs.
        self.on_work_available: Optional[Callable[[], None]] = None

    # -- work submission ---------------------------------------------------

    def submit(self, demand: int, kind: str = "user") -> WorkItem:
        """Queue ``demand`` ns of CPU work; returns the item (await .done)."""
        item = WorkItem(self.sim, demand, kind)
        self._items.append(item)
        self._leave_idle()
        if self.on_work_available is not None:
            self.on_work_available()
        return item

    # -- service interface used by the hypervisor ---------------------------

    def acquire_work(self, owner: str) -> Optional[WorkItem]:
        """The item ``owner`` should serve next.

        Preference order: the item this owner already claimed (resuming
        after preemption), then the oldest unclaimed *sys* item, then the
        oldest unclaimed user item. Kernel work (softirq, socket
        processing) preempting queued user work is what keeps a busy
        guest's packet intake alive while it crunches application bursts.
        """
        oldest_sys = None
        oldest_user = None
        for item in self._items:
            if item.owner == owner:
                return item
            if item.owner is None:
                if item.kind == "sys":
                    if oldest_sys is None:
                        oldest_sys = item
                elif oldest_user is None:
                    oldest_user = item
        chosen = oldest_sys if oldest_sys is not None else oldest_user
        if chosen is not None:
            chosen.owner = owner
        return chosen

    def charge(self, item: WorkItem, ran: int, consumed: Optional[int] = None) -> None:
        """Account ``ran`` wall-ns of service against ``item``.

        ``consumed`` is the demand retired, which differs from wall time
        under DVFS (a core at speed 0.5 retires half a nanosecond of
        nominal demand per wall nanosecond); it defaults to ``ran``.
        """
        if consumed is None:
            consumed = ran
        if item.started_at is None:
            item.started_at = self.sim.now - ran
        item.remaining -= consumed
        if item.kind == "user":
            self.accounting.user += ran
        else:
            self.accounting.sys += ran
        if item.remaining <= 0:
            self._items.remove(item)
            if not self._items:
                self._enter_idle()
            item.done.succeed(item)

    @property
    def has_work(self) -> bool:
        """Whether any work item is queued."""
        return bool(self._items)

    @property
    def has_unclaimed_work(self) -> bool:
        """Whether a VCPU waking up now would find an item to serve."""
        return any(item.owner is None for item in self._items)

    @property
    def queue_length(self) -> int:
        """Number of queued work items (including those in service)."""
        return len(self._items)

    # -- I/O-wait bookkeeping ------------------------------------------------

    def io_begin(self) -> None:
        """Note that a guest-side flow is now blocked on I/O."""
        self._flush_idle()
        self._outstanding_io += 1

    def io_end(self) -> None:
        """Note that one outstanding I/O wait completed."""
        if self._outstanding_io <= 0:
            raise RuntimeError(f"io_end without io_begin on guest {self.name!r}")
        self._flush_idle()
        self._outstanding_io -= 1

    @property
    def outstanding_io(self) -> int:
        """Number of flows currently blocked on I/O."""
        return self._outstanding_io

    # -- idle/iowait accounting ----------------------------------------------

    def _enter_idle(self) -> None:
        self._idle_since = self.sim.now

    def _leave_idle(self) -> None:
        self._flush_idle()
        self._idle_since = None

    def _flush_idle(self) -> None:
        """Attribute the idle interval so far to iowait when I/O is pending."""
        if self._idle_since is not None:
            if self._outstanding_io > 0:
                self.accounting.iowait += self.sim.now - self._idle_since
            self._idle_since = self.sim.now
