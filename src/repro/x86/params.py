"""Tunable constants of the x86/Xen island model.

Defaults follow the Xen 3.x credit scheduler the paper's prototype ran
(30 ms time slice, 10 ms tick, 30 ms accounting period, 100 credits debited
per tick) and the paper's hardware (dual-core 2.66 GHz Xeon).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import ms


@dataclass(frozen=True, slots=True)
class CreditParams:
    """Knobs of the credit scheduler (Xen's csched)."""

    #: Maximum uninterrupted run of one VCPU.
    time_slice: int = ms(30)
    #: Debit/boost-expiry tick.
    tick_period: int = ms(10)
    #: Credit redistribution period.
    accounting_period: int = ms(30)
    #: Credits taken from the running VCPU at each tick.
    credits_per_tick: int = 100
    #: Credits distributed per CPU per accounting period (Xen: 300 = 30 ms
    #: at 100 credits / 10 ms).
    credits_per_period_per_cpu: int = 300
    #: Upper bound on accumulated credits; blocked VCPUs saturate here,
    #: approximating Xen's active/inactive domain marking.
    credit_cap: int = 300
    #: Whether waking VCPUs with positive credits enter the BOOST priority.
    boost_enabled: bool = True
    #: Default weight given to new domains (Xen default).
    default_weight: int = 256


@dataclass(frozen=True, slots=True)
class X86Params:
    """Shape of the x86 host."""

    #: Physical core count (paper: dual-core Xeon).
    num_cpus: int = 2
    #: Credit-scheduler parameters.
    credit: CreditParams = CreditParams()
    #: Dom0's credit weight. Driver-domain deployments often provision
    #: Dom0 above the guest default so packet relaying keeps up.
    dom0_weight: int = 256
