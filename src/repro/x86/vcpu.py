"""Virtual CPUs and their credit-scheduler state."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .cpu import PhysicalCPU
    from .vm import VirtualMachine


class Priority(enum.IntEnum):
    """Credit-scheduler priority bands; lower numeric value runs first."""

    BOOST = 0
    UNDER = 1
    OVER = 2


class VCPUState(enum.Enum):
    """Lifecycle of a virtual CPU."""

    BLOCKED = "blocked"
    RUNNABLE = "runnable"
    RUNNING = "running"


class VCPU:
    """A virtual CPU: the unit the credit scheduler multiplexes on cores."""

    def __init__(self, vm: "VirtualMachine", index: int):
        self.vm = vm
        self.index = index
        self.name = f"{vm.name}.vcpu{index}"
        self.state = VCPUState.BLOCKED
        self.priority = Priority.UNDER
        #: Credit balance; replenished by accounting, debited by ticks.
        self.credits: float = 0.0
        #: True while in the transient BOOST band (cleared at next tick).
        self.boosted = False
        #: Core the VCPU last ran (or is running) on.
        self.cpu: Optional["PhysicalCPU"] = None
        #: Cores this VCPU may run on; None means unpinned (any core).
        self.affinity: Optional[frozenset[int]] = None
        #: Total time actually executed.
        self.runtime = 0
        #: Timestamp when the VCPU last became runnable (for steal time).
        self.runnable_since: Optional[int] = None

    def allowed_on(self, cpu: "PhysicalCPU") -> bool:
        """Whether affinity permits running on ``cpu``."""
        return self.affinity is None or cpu.index in self.affinity

    def effective_priority(self) -> Priority:
        """Priority band used for run-queue ordering."""
        if self.boosted:
            return Priority.BOOST
        return Priority.UNDER if self.credits >= 0 else Priority.OVER

    def __repr__(self) -> str:
        return (
            f"<VCPU {self.name} {self.state.value} {self.effective_priority().name}"
            f" credits={self.credits:.0f}>"
        )
