"""The Xen credit scheduler (csched), reimplemented over the DES kernel.

This follows the algorithm of Xen 3.x as described by Cherkasova et al.
("Comparison of the three CPU schedulers in Xen") and the Xen source:

* each domain has a *weight*; every 30 ms accounting period a system-wide
  pool of credits (300 per physical CPU) is divided among active domains in
  proportion to weight;
* every 10 ms tick the running VCPU is debited 100 credits; VCPUs with
  non-negative credits are UNDER, others OVER, and run queues are served
  UNDER before OVER;
* a VCPU that wakes with credits enters the transient BOOST band and may
  preempt the running VCPU — this is the latency mechanism the paper's
  **Trigger** coordination piggybacks on;
* a VCPU runs for at most a 30 ms time slice, then returns to the tail of
  its priority band; idle cores steal runnable VCPUs from busy ones.

The scheduler exposes exactly the knobs Dom0's XenCtrl uses: per-domain
weight and cap, plus :meth:`boost` for trigger semantics.
"""

from __future__ import annotations

import math
from typing import Optional

from ..sim import Interrupt, PeriodicTask, Simulator, Tracer
from .cpu import PhysicalCPU
from .params import CreditParams
from .vcpu import VCPU, Priority, VCPUState
from .vm import VirtualMachine


class CreditScheduler:
    """SMP credit scheduler multiplexing domain VCPUs onto physical cores."""

    def __init__(
        self,
        sim: Simulator,
        num_cpus: int = 2,
        params: Optional[CreditParams] = None,
        tracer: Optional[Tracer] = None,
    ):
        if num_cpus <= 0:
            raise ValueError(f"num_cpus must be positive, got {num_cpus}")
        self.sim = sim
        self.params = params or CreditParams()
        self.tracer = tracer or Tracer(sim, enabled=False)
        self.cpus = [PhysicalCPU(sim, i) for i in range(num_cpus)]
        self.domains: list[VirtualMachine] = []
        self._cap_used: dict[str, int] = {}
        self._consumed_at_last_accounting: dict[str, int] = {}
        #: VCPUs currently *active* in Xen's sense: consuming their credit
        #: grants. Only active VCPUs take part in credit distribution, so
        #: mostly-idle domains (Dom0 off-peak, an idle tier) do not waste
        #: their weight share — the crucial work-conserving property of
        #: csched_acct.
        self._active_vcpus: set[VCPU] = set()
        for cpu in self.cpus:
            cpu.loop = sim.spawn(self._cpu_loop(cpu), name=f"cpu{cpu.index}-loop")
        self._tick_task = PeriodicTask(
            sim, self.params.tick_period, self._on_tick, name="csched-tick"
        )
        self._accounting_task = PeriodicTask(
            sim, self.params.accounting_period, self._do_accounting, name="csched-accounting"
        )

    # -- domain management ----------------------------------------------------

    def add_domain(self, vm: VirtualMachine) -> None:
        """Admit a domain; its VCPUs start blocked until work arrives."""
        if vm in self.domains:
            raise ValueError(f"domain {vm.name!r} already added")
        self.domains.append(vm)
        self._cap_used[vm.name] = 0
        self._consumed_at_last_accounting[vm.name] = 0
        vm.attach_scheduler(self)

    def set_weight(self, vm: VirtualMachine, weight: int) -> None:
        """Set a domain's weight (takes effect at the next accounting)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.tracer.emit("csched", "set-weight", vm=vm.name, old=vm.weight, new=weight)
        vm.weight = weight

    def set_cap(self, vm: VirtualMachine, cap_percent: int) -> None:
        """Set a domain's utilisation cap in percent of one core (0 = none)."""
        if cap_percent < 0:
            raise ValueError(f"cap must be non-negative, got {cap_percent}")
        vm.cap_percent = cap_percent

    def set_cpu_speed(self, cpu_index: int, speed: float) -> None:
        """Change a core's DVFS speed factor (1.0 = nominal frequency).

        The running VCPU (if any) is preempted so its in-flight burst is
        re-timed at the new speed — the scheduling disturbance a real DVFS
        transition also causes.
        """
        if not 0.05 <= speed <= 1.0:
            raise ValueError(f"speed must be in [0.05, 1.0], got {speed}")
        cpu = self.cpus[cpu_index]
        if cpu.speed == speed:
            return
        cpu.speed = speed
        if cpu.current is not None:
            self._preempt(cpu)

    # -- the Trigger hook -------------------------------------------------------

    def boost(self, vm: VirtualMachine) -> None:
        """Move the domain's VCPUs to the BOOST band immediately.

        This realises the paper's **Trigger** mechanism: "boost the
        dequeuing guest VM's position in the runqueue". Blocked VCPUs are
        marked so their next wake boosts even if they are out of credits.
        """
        for vcpu in vm.vcpus:
            if vcpu.boosted:
                continue
            vcpu.boosted = True
            if vcpu.state is VCPUState.RUNNABLE:
                cpu = self._cpu_holding(vcpu)
                if cpu is not None:
                    cpu.run_queue.remove(vcpu)
                    self._enqueue(cpu, vcpu, at_head=True)
        self.tracer.emit("csched", "boost", vm=vm.name)

    # -- wake path ---------------------------------------------------------------

    def wake(self, vcpu: VCPU) -> None:
        """Make a blocked VCPU runnable (no-op otherwise)."""
        if vcpu.state is not VCPUState.BLOCKED:
            return
        if not vcpu.vm.guest.has_unclaimed_work:
            return
        vcpu.state = VCPUState.RUNNABLE
        vcpu.runnable_since = self.sim.now
        if self.params.boost_enabled and vcpu.credits >= 0:
            vcpu.boosted = True
        cpu = self._pick_cpu(vcpu)
        self._enqueue(cpu, vcpu, at_head=False)

    # -- run-queue mechanics -------------------------------------------------------

    def _cpu_holding(self, vcpu: VCPU) -> Optional[PhysicalCPU]:
        for cpu in self.cpus:
            if vcpu in cpu.run_queue:
                return cpu
        return None

    def _pick_cpu(self, vcpu: VCPU) -> PhysicalCPU:
        """Choose a core for a waking VCPU: its old core if idle, else an
        idle core nobody is queued on, else the shortest queue.

        The empty-queue condition matters for simultaneous wakes: a core
        whose loop has not yet picked up a queued VCPU still *looks* idle,
        and naive placement would pile everyone onto it.
        """
        if (
            vcpu.cpu is not None
            and vcpu.cpu.is_idle
            and not vcpu.cpu.run_queue
            and vcpu.allowed_on(vcpu.cpu)
        ):
            return vcpu.cpu
        for cpu in self.cpus:
            if cpu.is_idle and not cpu.run_queue and vcpu.allowed_on(cpu):
                return cpu
        candidates = [c for c in self.cpus if vcpu.allowed_on(c)]
        if not candidates:
            raise RuntimeError(f"VCPU {vcpu.name} has empty affinity")
        return min(candidates, key=lambda c: len(c.run_queue))

    def _enqueue(self, cpu: PhysicalCPU, vcpu: VCPU, at_head: bool) -> None:
        """Insert by priority band (head or tail of the band) and maybe
        wake/preempt the core."""
        band = vcpu.effective_priority()
        queue = cpu.run_queue
        index = len(queue)
        for i, other in enumerate(queue):
            other_band = other.effective_priority()
            if other_band > band or (at_head and other_band == band):
                index = i
                break
        queue.insert(index, vcpu)

        if cpu.is_idle:
            cpu.kick()
        else:
            running = cpu.current
            if running is not None and band < running.effective_priority():
                self._preempt(cpu)
            else:
                # Runqueue tickling (csched_runq_tickle): a runnable VCPU
                # queued behind a busy core wakes any idle peer, which
                # will steal it.
                for other in self.cpus:
                    if other is not cpu and other.is_idle and vcpu.allowed_on(other):
                        other.kick()
                        break

    def _preempt(self, cpu: PhysicalCPU) -> None:
        if cpu.loop is not None and cpu.loop.is_alive:
            cpu.loop.interrupt("preempt")

    def _cap_budget(self, vm: VirtualMachine) -> Optional[int]:
        """Remaining cap budget this period, or None when uncapped."""
        if vm.cap_percent <= 0:
            return None
        budget = self.params.accounting_period * vm.cap_percent // 100
        return budget - self._cap_used[vm.name]

    def _runnable_now(self, vcpu: VCPU) -> bool:
        budget = self._cap_budget(vcpu.vm)
        return budget is None or budget > 0

    def _pick_next(self, cpu: PhysicalCPU) -> Optional[VCPU]:
        """Next VCPU for ``cpu``.

        Like csched_schedule: take the best local candidate, but first peek
        at peers — if another core queues a strictly higher-priority VCPU
        (e.g. an UNDER while we only have OVER), steal it. This is what
        makes weights hold across cores, not just within one.
        """
        local: Optional[tuple[Priority, int]] = None
        for i, vcpu in enumerate(cpu.run_queue):
            if self._runnable_now(vcpu):
                local = (vcpu.effective_priority(), i)
                break

        best_remote: Optional[tuple[Priority, PhysicalCPU, int]] = None
        for other in self.cpus:
            if other is cpu:
                continue
            for i, vcpu in enumerate(other.run_queue):
                if not vcpu.allowed_on(cpu) or not self._runnable_now(vcpu):
                    continue
                band = vcpu.effective_priority()
                if best_remote is None or band < best_remote[0]:
                    best_remote = (band, other, i)
                break  # queues are priority-ordered: first eligible is best

        if best_remote is not None and (local is None or best_remote[0] < local[0]):
            _band, other, i = best_remote
            vcpu = other.run_queue[i]
            del other.run_queue[i]
            return vcpu
        if local is not None:
            _band, i = local
            vcpu = cpu.run_queue[i]
            del cpu.run_queue[i]
            return vcpu
        return None

    # -- core loop ----------------------------------------------------------------

    def _cpu_loop(self, cpu: PhysicalCPU):
        while True:
            vcpu = self._pick_next(cpu)
            if vcpu is None:
                cpu.idle_event = self.sim.event(name=f"cpu{cpu.index}-idle")
                cpu.note_idle_start()
                yield cpu.idle_event
                cpu.idle_event = None
                cpu.note_idle_end()
                continue
            yield from self._run(cpu, vcpu)

    def _run(self, cpu: PhysicalCPU, vcpu: VCPU):
        vcpu.state = VCPUState.RUNNING
        vcpu.cpu = cpu
        cpu.current = vcpu
        if self.tracer.wants("ctxsw-in"):
            self.tracer.emit("csched", "ctxsw-in", cpu=cpu.index, vcpu=vcpu.name,
                             vm=vcpu.vm.name)
        if vcpu.runnable_since is not None:
            vcpu.vm.accounting.steal += self.sim.now - vcpu.runnable_since
            vcpu.runnable_since = None
        slice_end = self.sim.now + self.params.time_slice
        guest = vcpu.vm.guest

        while True:
            item = guest.acquire_work(vcpu.name)
            if item is None:
                # Give same-instant submissions (handler continuations) a
                # chance to land before blocking, like a real guest that
                # has not executed HLT yet.
                try:
                    yield 0
                except Interrupt:
                    pass
                if guest.acquire_work(vcpu.name) is not None:
                    continue
                vcpu.state = VCPUState.BLOCKED
                break

            remaining_slice = slice_end - self.sim.now
            if remaining_slice <= 0:
                self._yield_cpu(cpu, vcpu)
                break

            # Wall time needed to retire the item at this core's DVFS
            # speed (demand is expressed at nominal frequency).
            speed = cpu.speed
            if speed == 1.0:
                item_wall = item.remaining
            else:
                item_wall = int(math.ceil(item.remaining / speed))
            segment = min(item_wall, remaining_slice)
            cap_budget = self._cap_budget(vcpu.vm)
            if cap_budget is not None:
                if cap_budget <= 0:
                    self._yield_cpu(cpu, vcpu)  # parked until cap refills
                    break
                segment = min(segment, cap_budget)

            started = self.sim.now
            try:
                # Slice burst as a pure integer delay (fast path); the
                # preemption Interrupt semantics are unchanged.
                yield segment
            except Interrupt:
                ran = self.sim.now - started
                self._charge(vcpu, item, ran, self._consumed(ran, item, speed), speed)
                self._yield_cpu(cpu, vcpu)
                break
            self._charge(vcpu, item, segment, self._consumed(segment, item, speed), speed)

        cpu.current = None
        if self.tracer.wants("ctxsw-out"):
            self.tracer.emit("csched", "ctxsw-out", cpu=cpu.index, vcpu=vcpu.name,
                             vm=vcpu.vm.name)

    @staticmethod
    def _consumed(wall: int, item, speed: float) -> int:
        """Demand retired by ``wall`` ns of execution at ``speed``."""
        if speed == 1.0:
            return wall
        return min(item.remaining, round(wall * speed))

    def _yield_cpu(self, cpu: PhysicalCPU, vcpu: VCPU) -> None:
        """Return a still-runnable VCPU to the tail of its priority band."""
        vcpu.state = VCPUState.RUNNABLE
        vcpu.runnable_since = self.sim.now
        self._enqueue(cpu, vcpu, at_head=False)

    def _charge(
        self,
        vcpu: VCPU,
        item,
        ran: int,
        consumed: Optional[int] = None,
        speed: Optional[float] = None,
    ) -> None:
        """Account ``ran`` wall-ns (retiring ``consumed`` demand-ns).

        ``speed`` is the DVFS speed the burst actually ran at (the core's
        current speed may already have changed when a DVFS transition
        preempted this very burst); it feeds the per-speed busy split the
        power meter integrates energy from.
        """
        if ran <= 0 and item.remaining > 0:
            return
        if consumed is None:
            consumed = ran
        if vcpu.cpu is not None:
            vcpu.cpu.note_busy(ran, speed if speed is not None else vcpu.cpu.speed)
        vcpu.runtime += ran
        # Continuous debit: ran * (100 credits / 10 ms). Xen's tick
        # point-samples the running VCPU instead; with this simulator's
        # deterministic arrival grids that sampling aliases badly (a VCPU
        # whose bursts straddle tick boundaries pays for time it never
        # ran), so we charge exactly what was consumed.
        vcpu.credits -= ran * self.params.credits_per_tick / self.params.tick_period
        if vcpu.vm.cap_percent > 0:
            self._cap_used[vcpu.vm.name] += ran
        vcpu.vm.guest.charge(item, ran, consumed)

    # -- periodic machinery -----------------------------------------------------------

    def _on_tick(self) -> None:
        """Every 10 ms: expire boosts, activate runners, re-evaluate.

        (Credit debiting happens continuously in :meth:`_charge`; the
        tick retains its scheduling roles.)
        """
        for cpu in self.cpus:
            running = cpu.current
            if running is None:
                continue
            running.boosted = False
            # A VCPU caught consuming CPU joins the active set
            # (csched_vcpu_acct does exactly this on the tick).
            self._active_vcpus.add(running)
            # If the debit dropped the runner below a queued VCPU's
            # band, reschedule (Xen re-evaluates on the tick timer).
            head = cpu.run_queue[0] if cpu.run_queue else None
            if head is not None and head.effective_priority() < running.effective_priority():
                self._preempt(cpu)

    def _do_accounting(self) -> None:
        """Distribute credits among *active* VCPUs by domain weight.

        Following csched_acct: only VCPUs that are consuming CPU receive
        credit grants; a VCPU whose balance saturates at the cap is
        demoted back to inactive (its credits reset to zero), so the
        weight denominator always reflects the domains actually competing
        and no share of the machine is reserved for the idle.
        """
        pool = self.params.credits_per_period_per_cpu * len(self.cpus)
        active = [v for v in self._active_vcpus]
        total_weight = sum(v.vm.weight for v in active)

        for vm in self.domains:
            self._consumed_at_last_accounting[vm.name] = vm.cpu_time()
            self._cap_used[vm.name] = 0

        if total_weight > 0:
            # Weight is per-domain; a multi-VCPU domain splits its share
            # across its active VCPUs.
            active_count: dict[str, int] = {}
            for vcpu in active:
                active_count[vcpu.vm.name] = active_count.get(vcpu.vm.name, 0) + 1
            for vcpu in active:
                share = pool * vcpu.vm.weight / total_weight / active_count[vcpu.vm.name]
                vcpu.credits += share
                if vcpu.credits < -self.params.credit_cap:
                    # csched bounds the debt at one slice's worth so a
                    # briefly-starved VCPU is not punished indefinitely.
                    vcpu.credits = float(-self.params.credit_cap)
                if vcpu.credits >= self.params.credit_cap:
                    if vcpu.state is VCPUState.BLOCKED:
                        # Genuinely idle: park it inactive at zero so its
                        # weight leaves the distribution denominator.
                        vcpu.credits = 0.0
                        self._active_vcpus.discard(vcpu)
                    else:
                        # Runnable but outpaced by its grant (it is being
                        # starved, not idle): keep it active, clamp the bank.
                        vcpu.credits = float(self.params.credit_cap)

        # Priorities may have changed band: re-sort queues, wake idle cores
        # (capped VCPUs may have been unparked), and preempt where needed.
        for cpu in self.cpus:
            if cpu.run_queue:
                ordered = sorted(cpu.run_queue, key=lambda v: v.effective_priority())
                cpu.run_queue.clear()
                cpu.run_queue.extend(ordered)
                if cpu.is_idle:
                    cpu.kick()
                else:
                    head = cpu.run_queue[0]
                    running = cpu.current
                    if (
                        running is not None
                        and head.effective_priority() < running.effective_priority()
                    ):
                        self._preempt(cpu)

    # -- introspection -------------------------------------------------------------------

    def total_cpu_time(self) -> int:
        """CPU time consumed by all domains so far."""
        return sum(vm.cpu_time() for vm in self.domains)

    def runnable_vcpus(self) -> list[VCPU]:
        """All VCPUs currently waiting in some run queue."""
        return [v for cpu in self.cpus for v in cpu.run_queue]
