"""Packets: the unit of data moving through wires, the IXP and the host.

A packet carries addressing (src/dst host names, which double as the VM IP
identity the IXP classifies on), a size in bytes for serialisation and
buffer accounting, a ``kind`` tag, and an application payload dict (e.g.
the RUBiS request object or RTP frame metadata). ``stamps`` records the
time the packet passed each pipeline stage, giving per-stage latency
breakdowns for free.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_packet_ids = itertools.count(1)

#: Standard Ethernet MTU used to fragment large messages.
MTU_BYTES = 1500


@dataclass
class Packet:
    """One network packet (or message fragment)."""

    src: str
    dst: str
    size: int
    kind: str = "data"
    payload: dict[str, Any] = field(default_factory=dict)
    #: Identifier of the classified flow this packet belongs to; assigned
    #: by the IXP classifier on the receive path.
    flow: Optional[str] = None
    pid: int = field(default_factory=lambda: next(_packet_ids))
    stamps: dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    def stamp(self, stage: str, now: int) -> None:
        """Record that the packet passed ``stage`` at time ``now``."""
        self.stamps[stage] = now

    def latency(self, from_stage: str, to_stage: str) -> int:
        """Time spent between two recorded stages."""
        return self.stamps[to_stage] - self.stamps[from_stage]

    def __repr__(self) -> str:
        return f"<Packet #{self.pid} {self.kind} {self.src}->{self.dst} {self.size}B>"


def fragment(
    src: str,
    dst: str,
    total_size: int,
    kind: str,
    payload: dict[str, Any],
    mtu: int = MTU_BYTES,
) -> list[Packet]:
    """Split a message of ``total_size`` bytes into MTU-sized packets.

    The application payload rides on the *last* fragment (the message is
    complete only when its final packet arrives), mirroring how a request
    parser fires once the final segment is in.
    """
    if total_size <= 0:
        raise ValueError(f"message size must be positive, got {total_size}")
    sizes = []
    remaining = total_size
    while remaining > 0:
        take = min(mtu, remaining)
        sizes.append(take)
        remaining -= take
    packets = []
    for i, size in enumerate(sizes):
        last = i == len(sizes) - 1
        packets.append(
            Packet(
                src=src,
                dst=dst,
                size=size,
                kind=kind,
                payload=payload if last else {"fragment_of": kind},
            )
        )
    return packets
