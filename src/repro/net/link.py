"""Point-to-point wire links with bandwidth and propagation delay.

A :class:`Link` is a unidirectional store-and-forward pipe: packets are
serialised one at a time at the link's bandwidth, then arrive at the sink
after the propagation latency. The transmit queue is bounded; overflowing
it drops packets (and counts them), which matters for the UDP streaming
experiments.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator, Store, Tracer, us
from .packet import Packet

#: Handler invoked at the receiving end of a link.
PacketSink = Callable[[Packet], None]

#: Gigabit Ethernet, expressed in bytes per nanosecond.
GBIT_PER_SEC = 0.125


class Link:
    """Unidirectional link: ``send`` at one end, sink callback at the other."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bytes_per_ns: float = GBIT_PER_SEC,
        latency: int = us(50),
        queue_packets: int = 1000,
        tracer: Optional[Tracer] = None,
    ):
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.name = name
        self.bandwidth = bandwidth_bytes_per_ns
        self.latency = latency
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._queue: Store[Packet] = Store(sim, capacity=queue_packets, name=f"{name}-txq")
        self._sink: Optional[PacketSink] = None
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        sim.spawn(self._pump(), name=f"link-{name}")

    def connect(self, sink: PacketSink) -> None:
        """Attach the receiving end."""
        self._sink = sink

    def send(self, packet: Packet) -> bool:
        """Queue a packet for transmission; False if the TX queue is full."""
        if not self._queue.try_put(packet):
            self.dropped += 1
            self.tracer.emit(self.name, "link-drop", pid=packet.pid)
            return False
        self.sent += 1
        return True

    def serialization_delay(self, size: int) -> int:
        """Time to clock ``size`` bytes onto the wire."""
        return round(size / self.bandwidth)

    def _pump(self):
        while True:
            packet = yield self._queue.get()
            # Integer fast path: per-packet serialisation with no Timeout.
            yield self.serialization_delay(packet.size)
            # Propagation is pipelined: schedule delivery, keep serialising.
            self.sim.call_in(self.latency, lambda p=packet: self._deliver(p))

    def _deliver(self, packet: Packet) -> None:
        self.delivered += 1
        if self._sink is None:
            raise RuntimeError(f"link {self.name!r} delivered a packet with no sink connected")
        self._sink(packet)

    def __repr__(self) -> str:
        return f"<Link {self.name} queued={len(self._queue)} sent={self.sent}>"


class DuplexLink:
    """A pair of opposite :class:`Link`\\ s bundled for convenience."""

    def __init__(self, sim: Simulator, name: str, **kwargs):
        self.forward = Link(sim, f"{name}-fwd", **kwargs)
        self.backward = Link(sim, f"{name}-rev", **kwargs)
