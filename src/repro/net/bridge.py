"""The Xen software bridge running in Dom0.

All VM traffic — inter-VM and to/from the IXP virtual interface — is
relayed here (paper §2: "Using the Xen bridge tools, we make this IXP ViF
the primary network interface for network communication between Xen DomUs
and the outside world"). Every relayed packet costs Dom0 system CPU
(bridge hook + netback copy), so heavy traffic makes Dom0 compete with
guest domains — one of the couplings coordination has to live with.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator, Store, Tracer, us
from ..x86.vm import VirtualMachine
from .nic import VirtualNIC
from .packet import Packet

#: Dom0 CPU cost to relay one packet (bridge hook + netback/netfront copy).
DEFAULT_RELAY_COST = us(15)


class XenBridge:
    """Learning-free software bridge: static table of name -> NIC ports."""

    def __init__(
        self,
        sim: Simulator,
        dom0: VirtualMachine,
        relay_cost: int = DEFAULT_RELAY_COST,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.dom0 = dom0
        self.relay_cost = relay_cost
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._ports: dict[str, VirtualNIC] = {}
        self._uplink: Optional[Callable[[Packet], None]] = None
        self._ingress: Store[Packet] = Store(sim, name="bridge-ingress")
        self.relayed = 0
        self.to_uplink = 0
        sim.spawn(self._pump(), name="xen-bridge")

    # -- wiring ----------------------------------------------------------------

    def add_port(self, host_name: str, nic: VirtualNIC) -> None:
        """Attach a VM NIC under its host name (its 'IP identity')."""
        if host_name in self._ports:
            raise ValueError(f"bridge already has a port for {host_name!r}")
        self._ports[host_name] = nic
        nic.attach_egress(self.submit)

    def set_uplink(self, uplink: Callable[[Packet], None]) -> None:
        """Where packets for unknown destinations go (the IXP ViF TX)."""
        self._uplink = uplink

    def ports(self) -> dict[str, VirtualNIC]:
        """Copy of the forwarding table."""
        return dict(self._ports)

    # -- data path ----------------------------------------------------------------

    def submit(self, packet: Packet) -> None:
        """Enqueue a packet for relaying (never blocks the caller)."""
        self._ingress.try_put(packet)  # unbounded store: always succeeds

    def _pump(self):
        """Single relay thread: realistic for 2.6-era netback processing."""
        while True:
            packet = yield self._ingress.get()
            yield self.dom0.execute(self.relay_cost, kind="sys")
            self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        packet.stamp("bridge", self.sim.now)
        port = self._ports.get(packet.dst)
        if port is not None:
            self.relayed += 1
            port.deliver(packet)
            return
        if self._uplink is None:
            raise RuntimeError(f"bridge has no uplink but packet for {packet.dst!r} needs one")
        self.to_uplink += 1
        self._uplink(packet)

    def __repr__(self) -> str:
        return f"<XenBridge ports={sorted(self._ports)} relayed={self.relayed}>"
