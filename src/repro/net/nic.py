"""Virtual NICs: the network attachment point of a VM (netfront) and of
simulated external hosts.

A :class:`VirtualNIC` owns a bounded receive queue. Application code reads
with ``yield nic.recv()`` and writes through whatever egress callable the
island wired up (for VMs: the Xen bridge; for client hosts: a wire link).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Event, Simulator, Store
from .packet import Packet


class VirtualNIC:
    """A named network interface with an RX queue and a pluggable egress."""

    def __init__(self, sim: Simulator, name: str, rx_capacity: int = 2048):
        self.sim = sim
        self.name = name
        self.rx_queue: Store[Packet] = Store(sim, capacity=rx_capacity, name=f"{name}-rx")
        self._egress: Optional[Callable[[Packet], None]] = None
        self.rx_count = 0
        self.tx_count = 0
        self.rx_dropped = 0

    def attach_egress(self, egress: Callable[[Packet], None]) -> None:
        """Connect the transmit side (bridge, link, ...)."""
        self._egress = egress

    # -- receive path -------------------------------------------------------

    def deliver(self, packet: Packet) -> bool:
        """Push a packet into the RX queue (called by bridge/link sinks)."""
        packet.stamp(f"{self.name}.rx", self.sim.now)
        if not self.rx_queue.try_put(packet):
            self.rx_dropped += 1
            return False
        self.rx_count += 1
        return True

    def recv(self) -> Event:
        """Event that fires with the next received packet."""
        return self.rx_queue.get()

    # -- transmit path --------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Hand a packet to the egress path."""
        if self._egress is None:
            raise RuntimeError(f"NIC {self.name!r} has no egress attached")
        packet.stamp(f"{self.name}.tx", self.sim.now)
        self.tx_count += 1
        self._egress(packet)

    def __repr__(self) -> str:
        return f"<VirtualNIC {self.name} rx={self.rx_count} tx={self.tx_count}>"
