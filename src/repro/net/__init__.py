"""Network substrate: packets, wire links, NICs and the Xen bridge."""

from .bridge import DEFAULT_RELAY_COST, XenBridge
from .link import GBIT_PER_SEC, DuplexLink, Link, PacketSink
from .nic import VirtualNIC
from .packet import MTU_BYTES, Packet, fragment

__all__ = [
    "DEFAULT_RELAY_COST",
    "DuplexLink",
    "GBIT_PER_SEC",
    "Link",
    "MTU_BYTES",
    "Packet",
    "PacketSink",
    "VirtualNIC",
    "XenBridge",
    "fragment",
]
