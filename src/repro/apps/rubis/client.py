"""The RUBiS client emulator.

A closed-loop session generator, as in the standard RUBiS client: a fixed
population of concurrent user sessions, each issuing requests drawn from a
workload mix's Markov transitions, waiting for the response, thinking, and
continuing. When a session finishes its request budget a new one starts —
the paper reports both completed-session counts and per-type response
times from exactly this kind of run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ...sim import Event, RandomStream, Simulator, ms, seconds, to_seconds
from ...metrics import ResponseTimeRecorder, WindowedCounter
from ...net import Packet
from ...testbed import ClientHost
from .workload import MarkovSession, WorkloadMix

_request_ids = itertools.count(1)


@dataclass
class ClientStats:
    """What the client harness measures (the paper's Table 2 inputs)."""

    responses: ResponseTimeRecorder
    throughput: WindowedCounter
    sessions_completed: int = 0
    session_times: list[int] = field(default_factory=list)

    def mean_session_time_s(self) -> float:
        """Average completed-session duration in seconds."""
        if not self.session_times:
            return 0.0
        return to_seconds(sum(self.session_times)) / len(self.session_times)


class RubisClient:
    """A population of emulated user sessions on one client host."""

    def __init__(
        self,
        sim: Simulator,
        host: ClientHost,
        web_server: str,
        mix: WorkloadMix,
        rng: RandomStream,
        num_sessions: int = 32,
        requests_per_session: int = 25,
        think_time_mean: int = ms(400),
        warmup: int = seconds(5),
        markov_sessions: bool = False,
    ):
        """With ``markov_sessions`` each session walks the full per-type
        transition table (:class:`~repro.apps.rubis.workload.MarkovSession`)
        instead of drawing independently from the mix — realistic
        browse -> bid -> confirm funnels at the cost of phase control."""
        self.sim = sim
        self.host = host
        self.web_server = web_server
        self.mix = mix
        self.rng = rng
        self.num_sessions = num_sessions
        self.requests_per_session = requests_per_session
        self.think_time_mean = think_time_mean
        self.warmup = warmup
        self.markov_sessions = markov_sessions
        self.stats = ClientStats(
            responses=ResponseTimeRecorder(sim), throughput=WindowedCounter(sim)
        )
        self._pending: dict[int, Event] = {}
        self.requests_sent = 0
        self._phase = mix.phases[0] if mix.phases else None
        if mix.phases:
            sim.spawn(self._phase_loop(), name="rubis-phase")
        sim.spawn(self._rx_loop(), name="rubis-client-rx")
        for i in range(num_sessions):
            sim.spawn(self._session_loop(i), name=f"rubis-session-{i}")

    # -- global workload phases ----------------------------------------------

    @property
    def current_phase(self):
        """The active global phase (None in per-session Markov mode)."""
        return self._phase

    def _phase_loop(self):
        index = 0
        while True:
            self._phase = self.mix.phases[index % len(self.mix.phases)]
            duration = seconds(self._phase.duration(self.rng))
            yield self.sim.timeout(round(duration))
            index += 1

    # -- receive side -------------------------------------------------------

    def _rx_loop(self):
        while True:
            packet: Packet = yield self.host.nic.recv()
            request_id = packet.payload.get("http_response_to")
            if request_id is None:
                continue  # fragment or stray packet
            waiter = self._pending.pop(request_id, None)
            if waiter is not None:
                waiter.succeed(packet)

    # -- session behaviour -----------------------------------------------------

    def _session_loop(self, index: int):
        # Stagger session starts so the run does not begin with a burst.
        yield self.sim.timeout(self.rng.randrange(0, max(1, self.think_time_mean * 2)))
        while True:
            session_started = self.sim.now
            request_class = self.mix.initial_class(self.rng)
            chain = MarkovSession(self.rng) if self.markov_sessions else None
            for _ in range(self.requests_per_session):
                if chain is not None:
                    request_type = chain.next_type()
                else:
                    if self._phase is not None:
                        request_class = self.mix.class_in_phase(self._phase, self.rng)
                    request_type = self.mix.draw_type(request_class, self.rng)
                issued = self.sim.now
                response = yield from self._issue(request_type)
                if response is not None and issued >= self.warmup:
                    self.stats.responses.record(request_type.name, self.sim.now - issued)
                    self.stats.throughput.record()
                think = round(self.rng.exponential(self.think_time_mean))
                yield self.sim.timeout(think)
                request_class = self.mix.next_class(request_class, self.rng)
            if session_started >= self.warmup:
                self.stats.sessions_completed += 1
                self.stats.session_times.append(self.sim.now - session_started)

    def _issue(self, request_type):
        request_id = next(_request_ids)
        reply = self.sim.event(name=f"http-{request_id}")
        self._pending[request_id] = reply
        packet = Packet(
            src=self.host.name,
            dst=self.web_server,
            size=request_type.request_size,
            kind="http-req",
            payload={
                "request_id": request_id,
                "request_type": request_type.name,
                "request_class": request_type.request_class,
            },
        )
        self.requests_sent += 1
        self.host.nic.send(packet)
        response = yield reply
        return response
