"""The RUBiS multi-tier auction-site application model."""

from .client import ClientStats, RubisClient
from .request_types import (
    BY_NAME,
    READ_TYPES,
    REQUEST_TYPES,
    WRITE_TYPES,
    RequestType,
)
from .setup import (
    APP_VM,
    CLIENT_HOST,
    DB_VM,
    WEB_VM,
    RubisConfig,
    RubisDeployment,
    deploy_rubis,
)
from .tiers import ApplicationServer, DatabaseServer, TierServer, WebServer
from .workload import BIDDING_MIX, BROWSING_MIX, MarkovSession, PhaseSpec, TRANSITIONS, WorkloadMix

__all__ = [
    "APP_VM",
    "ApplicationServer",
    "BIDDING_MIX",
    "BROWSING_MIX",
    "BY_NAME",
    "CLIENT_HOST",
    "ClientStats",
    "DB_VM",
    "DatabaseServer",
    "MarkovSession",
    "PhaseSpec",
    "TRANSITIONS",
    "READ_TYPES",
    "REQUEST_TYPES",
    "RequestType",
    "RubisClient",
    "RubisConfig",
    "RubisDeployment",
    "TierServer",
    "WEB_VM",
    "WRITE_TYPES",
    "WebServer",
    "WorkloadMix",
    "deploy_rubis",
]
