"""RUBiS client workload mixes.

The standard RUBiS benchmark ships two session mixes (paper §3.1):

* the **browsing mix** — read-only: static pages and images, heavy
  web/app-server interaction, essentially no database work;
* the **bid/browse/sell (read-write) mix** — dynamic servlet content with
  database reads and writes.

"Request traffic from the client follows probabilistic transitions
emulating multiple user browsing sessions"; we model this as a two-level
Markov chain: sticky transitions between the read and write *phases* (this
is what produces the oscillation that occasionally defeats the paper's
per-request coordination), and a per-phase distribution over request types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...sim import RandomStream
from .request_types import BY_NAME, READ_TYPES, REQUEST_TYPES, WRITE_TYPES, RequestType


@dataclass(frozen=True)
class PhaseSpec:
    """One global workload phase: a read share and how long it lasts.

    Durations are deterministic by default (``jitter`` = 0) so paired
    base/coordinated runs see the exact same phase schedule; set ``jitter``
    to randomise duration by up to +/- that fraction.
    """

    name: str
    read_probability: float
    mean_duration_s: float
    jitter: float = 0.0

    def duration(self, rng: RandomStream) -> float:
        """Concrete duration in seconds for one occurrence of the phase."""
        if self.jitter <= 0:
            return self.mean_duration_s
        spread = self.jitter * (2.0 * rng.random() - 1.0)
        return self.mean_duration_s * (1.0 + spread)


@dataclass(frozen=True)
class WorkloadMix:
    """A session-level request generator specification.

    Request classes are drawn from the *global phase* when ``phases`` is
    set — all sessions see the same browse period or bidding storm, the
    flash-crowd/auction-closing correlation real auction traffic exhibits
    (and what shifts the platform bottleneck between web and db tier).
    Without phases, each session runs its own sticky Markov chain.
    """

    name: str
    #: Probability that the next request stays in the current class
    #: (per-session Markov mode, used when ``phases`` is empty).
    read_stickiness: float
    write_stickiness: float
    #: Relative weights of request types within each class.
    read_weights: dict[str, float] = field(default_factory=dict)
    write_weights: dict[str, float] = field(default_factory=dict)
    #: Fraction of sessions starting in the read phase.
    start_read_probability: float = 0.9
    #: Global phases cycled through in order (empty = per-session Markov).
    phases: tuple[PhaseSpec, ...] = ()

    def initial_class(self, rng: RandomStream) -> str:
        """Draw the class of a session's first request."""
        return "read" if rng.random() < self.start_read_probability else "write"

    def next_class(self, current: str, rng: RandomStream) -> str:
        """Markov phase transition from the current request class."""
        if current == "read":
            return "read" if rng.random() < self.read_stickiness else "write"
        return "write" if rng.random() < self.write_stickiness else "read"

    def class_in_phase(self, phase: PhaseSpec, rng: RandomStream) -> str:
        """Draw a request class under a global phase."""
        return "read" if rng.random() < phase.read_probability else "write"

    def draw_type(self, request_class: str, rng: RandomStream) -> RequestType:
        """Draw a request type within a class."""
        types = READ_TYPES if request_class == "read" else WRITE_TYPES
        weights = self.read_weights if request_class == "read" else self.write_weights
        if not weights:
            return types[rng.randrange(len(types))]
        return rng.weighted_choice(types, [weights.get(t.name, 1.0) for t in types])


#: Per-type session transitions, condensed from the structure of the RUBiS
#: client's transition table: each row maps a request type to the plausible
#: next user actions and their relative odds. Unlisted successors get a
#: small uniform residual, so every type remains reachable.
TRANSITIONS: dict[str, dict[str, float]] = {
    "Browse": {"BrowseCategories": 5, "BrowseRegions": 3, "Browse": 1},
    "BrowseCategories": {"SearchItemsInCategory": 6, "Browse": 1, "ViewItem": 2},
    "SearchItemsInCategory": {"ViewItem": 6, "SearchItemsInCategory": 2,
                              "BrowseCategories": 1},
    "BrowseRegions": {"BrowseCategoriesInRegion": 6, "Browse": 1},
    "BrowseCategoriesInRegion": {"SearchItemsInRegion": 6, "BrowseRegions": 1},
    "SearchItemsInRegion": {"ViewItem": 5, "SearchItemsInRegion": 2},
    "ViewItem": {"PutBidAuth": 3, "BuyNow": 1, "ViewItem": 1,
                 "SearchItemsInCategory": 2, "Browse": 2},
    "PutBidAuth": {"PutBid": 8, "Browse": 1},
    "PutBid": {"StoreBid": 7, "ViewItem": 1},
    "StoreBid": {"Browse": 4, "ViewItem": 2, "PutComment": 1, "AboutMe": 1},
    "BuyNow": {"Browse": 3, "AboutMe": 1},
    "PutComment": {"Browse": 3, "AboutMe": 1},
    "AboutMe": {"Browse": 4, "Sell": 1},
    "Sell": {"SellItemForm": 8, "Browse": 1},
    "SellItemForm": {"Register": 2, "Browse": 3},
    "Register": {"Browse": 4, "Sell": 1},
}


class MarkovSession:
    """Per-type Markov chain over the full request catalogue.

    The standard RUBiS client drives each emulated user with a transition
    table between request types; this is the scaled-down equivalent for
    studies that need realistic *sequences* (e.g. PutBidAuth -> PutBid ->
    StoreBid funnels) rather than just a class mix.
    """

    RESIDUAL_WEIGHT = 0.2

    def __init__(self, rng: RandomStream, start: str = "Browse"):
        if start not in BY_NAME:
            raise ValueError(f"unknown request type {start!r}")
        self.rng = rng
        self.current = start

    def next_type(self) -> RequestType:
        """Advance the chain and return the new request type."""
        row = TRANSITIONS.get(self.current, {})
        names = [rt.name for rt in REQUEST_TYPES]
        weights = [row.get(name, self.RESIDUAL_WEIGHT) for name in names]
        chosen = self.rng.weighted_choice(names, weights)
        self.current = chosen
        return BY_NAME[chosen]


#: Read-only browsing mix: every request is a read.
BROWSING_MIX = WorkloadMix(
    name="browsing",
    read_stickiness=1.0,
    write_stickiness=0.0,
    start_read_probability=1.0,
    read_weights={
        "Browse": 2.0,
        "BrowseCategories": 1.5,
        "SearchItemsInCategory": 1.5,
        "ViewItem": 2.0,
        "BrowseRegions": 1.0,
        "BrowseCategoriesInRegion": 1.0,
        "SearchItemsInRegion": 1.0,
        "SellItemForm": 0.5,
    },
)

#: Bid/browse/sell read-write mix: global browse periods alternating with
#: bidding storms (auction-close flash crowds), long-run read share ~0.6.
BIDDING_MIX = WorkloadMix(
    name="bid-browse-sell",
    read_stickiness=0.85,
    write_stickiness=0.78,
    phases=(
        PhaseSpec("browse-period", read_probability=0.9, mean_duration_s=10.0),
        PhaseSpec("bidding-storm", read_probability=0.15, mean_duration_s=8.0),
    ),
    read_weights={
        "Browse": 1.5,
        "BrowseCategories": 1.2,
        "SearchItemsInCategory": 1.5,
        "ViewItem": 2.0,
        "BrowseRegions": 0.8,
        "BrowseCategoriesInRegion": 0.8,
        "SearchItemsInRegion": 1.0,
        "SellItemForm": 0.7,
    },
    write_weights={
        "PutBid": 1.8,
        "StoreBid": 1.5,
        "PutBidAuth": 1.2,
        "BuyNow": 0.8,
        "PutComment": 0.9,
        "Sell": 0.8,
        "Register": 0.6,
        "AboutMe": 0.8,
    },
)
