"""The three RUBiS tiers: web server, application server, database server.

Each tier runs inside its own Xen VM (paper §3.1: Apache front-end, Tomcat
servlets, MySQL back-end in separate HVM domains) and is modelled as a
request-driven server: packets arrive at the VM's NIC, cost kernel (sys)
CPU, then the handler burns the tier's profiled user CPU demand and makes
its downstream call, blocking in iowait like a real thread would.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

from ...sim import Event, RandomStream, Simulator, us
from ...net import Packet, VirtualNIC, fragment
from ...x86.vm import VirtualMachine
from .request_types import (
    APP_TO_WEB_RESPONSE_SIZE,
    BY_NAME,
    DB_TO_APP_RESPONSE_SIZE,
    INTER_TIER_REQUEST_SIZE,
    TIER_SYS_OVERHEAD,
    RequestType,
)

#: Guest kernel cost per received packet (softirq + socket delivery).
PER_PACKET_RX_COST = us(12)
#: Guest kernel cost per transmitted packet.
PER_PACKET_TX_COST = us(10)

_call_ids = itertools.count(1)


class TierServer:
    """Shared machinery: packet RX loop, RPC correlation, demand sampling.

    ``stall_probability``/``stall_min``/``stall_max`` model the heavy tail
    of real tier service times — JVM garbage-collection pauses, MySQL lock
    convoys, Apache mutex contention. These rare multi-tens-of-ms bursts
    are what make a FIFO tier back up and are a large part of why the
    paper's baseline shows second-class response times at moderate CPU
    utilisation.
    """

    #: Default heavy-tail parameters; subclasses override per stack.
    STALL_PROBABILITY = 0.01
    STALL_MIN = us(40_000)  # 40 ms
    STALL_MAX = us(180_000)  # 180 ms

    def __init__(
        self,
        sim: Simulator,
        vm: VirtualMachine,
        nic: VirtualNIC,
        rng: RandomStream,
        stall_probability: Optional[float] = None,
        stall_min: Optional[int] = None,
        stall_max: Optional[int] = None,
    ):
        self.sim = sim
        self.vm = vm
        self.nic = nic
        self.rng = rng
        self.stall_probability = (
            self.STALL_PROBABILITY if stall_probability is None else stall_probability
        )
        self.stall_min = self.STALL_MIN if stall_min is None else stall_min
        self.stall_max = self.STALL_MAX if stall_max is None else stall_max
        self._pending: dict[int, Event] = {}
        self.handled = 0
        self.stalls = 0
        sim.spawn(self._rx_loop(), name=f"{vm.name}-rx")

    # -- plumbing -----------------------------------------------------------

    def _rx_loop(self):
        while True:
            packet: Packet = yield self.nic.recv()
            yield self.vm.execute(PER_PACKET_RX_COST, kind="sys")
            payload = packet.payload
            if "fragment_of" in payload:
                continue  # non-final fragment: kernel cost only
            call_id = payload.get("rpc_response_to")
            if call_id is not None:
                waiter = self._pending.pop(call_id, None)
                if waiter is not None:
                    waiter.succeed(payload)
                continue
            self.sim.spawn(self._handle(packet), name=f"{self.vm.name}-handler")

    def _handle(self, packet: Packet):
        """Subclasses implement the tier's request handling."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator

    def _draw(self, mean_demand: int, cv: float) -> int:
        """Sample a service demand around its profiled mean, plus the
        occasional heavy-tail stall (GC pause, lock convoy)."""
        if mean_demand <= 0:
            return 0
        sigma = mean_demand * cv
        demand = round(self.rng.bounded_normal(mean_demand, sigma, minimum=mean_demand * 0.2))
        if self.stall_probability > 0 and self.rng.random() < self.stall_probability:
            self.stalls += 1
            demand += self.rng.randrange(self.stall_min, self.stall_max)
        return demand

    def send_message(
        self, dst: str, total_size: int, kind: str, payload: dict[str, Any]
    ) -> Generator:
        """Transmit a (possibly fragmented) message, paying guest TX CPU."""
        packets = fragment(self.vm.name, dst, total_size, kind, payload)
        yield self.vm.execute(PER_PACKET_TX_COST * len(packets), kind="sys")
        for packet in packets:
            self.nic.send(packet)

    def rpc(
        self, dst: str, payload: dict[str, Any], size: int = INTER_TIER_REQUEST_SIZE
    ) -> Generator:
        """Blocking downstream call: returns the response payload.

        The calling handler waits in guest iowait, like a worker thread
        blocked on a socket read.
        """
        call_id = next(_call_ids)
        payload = dict(payload, rpc_call_id=call_id)
        reply = self.sim.event(name=f"rpc-{call_id}")
        self._pending[call_id] = reply
        yield from self.send_message(dst, size, kind="rpc-req", payload=payload)
        response = yield from self.vm.io_wait(reply)
        return response


class DatabaseServer(TierServer):
    """MySQL-like back-end: pure CPU demand per query.

    Heavy tail: lock convoys and buffer-pool flushes.
    """

    STALL_PROBABILITY = 0.012
    STALL_MIN = us(40_000)
    STALL_MAX = us(220_000)

    def _handle(self, packet: Packet):
        request_type: RequestType = BY_NAME[packet.payload["request_type"]]
        yield self.vm.execute(TIER_SYS_OVERHEAD, kind="sys")
        yield self.vm.execute(
            self._draw(request_type.db_demand, request_type.demand_cv), kind="user"
        )
        self.handled += 1
        yield from self.send_message(
            packet.src,
            DB_TO_APP_RESPONSE_SIZE,
            kind="rpc-resp",
            payload={"rpc_response_to": packet.payload["rpc_call_id"]},
        )


class ApplicationServer(TierServer):
    """Tomcat-like middle tier: servlet CPU + optional database call.

    Heavy tail: JVM garbage-collection pauses (the worst of the three).
    """

    STALL_PROBABILITY = 0.01
    STALL_MIN = us(40_000)
    STALL_MAX = us(150_000)

    def __init__(self, sim, vm, nic, rng, db_name: str, **stall_kwargs):
        super().__init__(sim, vm, nic, rng, **stall_kwargs)
        self.db_name = db_name

    def _handle(self, packet: Packet):
        request_type: RequestType = BY_NAME[packet.payload["request_type"]]
        yield self.vm.execute(TIER_SYS_OVERHEAD, kind="sys")
        yield self.vm.execute(
            self._draw(request_type.app_demand, request_type.demand_cv), kind="user"
        )
        if request_type.uses_db:
            yield from self.rpc(
                self.db_name, {"request_type": request_type.name}
            )
        self.handled += 1
        yield from self.send_message(
            packet.src,
            APP_TO_WEB_RESPONSE_SIZE,
            kind="rpc-resp",
            payload={"rpc_response_to": packet.payload["rpc_call_id"]},
        )


class WebServer(TierServer):
    """Apache-like front end: parses requests, serves static content,
    delegates dynamic work to the application server.

    Heavy tail: small — Apache's worker model rarely stalls hard.
    """

    STALL_PROBABILITY = 0.004
    STALL_MIN = us(20_000)
    STALL_MAX = us(80_000)

    def __init__(self, sim, vm, nic, rng, app_name: str, **stall_kwargs):
        super().__init__(sim, vm, nic, rng, **stall_kwargs)
        self.app_name = app_name

    def _handle(self, packet: Packet):
        request_type: RequestType = BY_NAME[packet.payload["request_type"]]
        yield self.vm.execute(TIER_SYS_OVERHEAD, kind="sys")
        yield self.vm.execute(
            self._draw(request_type.web_demand, request_type.demand_cv), kind="user"
        )
        if request_type.uses_app:
            yield from self.rpc(
                self.app_name, {"request_type": request_type.name}
            )
        self.handled += 1
        yield from self.send_message(
            packet.src,
            request_type.response_size,
            kind="http-resp",
            payload={
                "http_response_to": packet.payload["request_id"],
                "request_type": request_type.name,
            },
        )
