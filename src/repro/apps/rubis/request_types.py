"""The RUBiS request-type catalogue and per-tier service-demand profiles.

RUBiS (an eBay-like auction site benchmark) exposes ~20 basic request
types; the paper's Table 1 reports sixteen of them. Each type is annotated
with:

* its *class* — ``read`` (browsing: static HTML/images served by the web
  tier, heavy web/app interaction, "practically no database server
  processing") or ``write`` (servlet-generated dynamic content with
  database reads/writes and heavier application-server CPU, §3.1);
* per-tier CPU service demands (the offline profile the paper's
  coordination relies on);
* request/response message sizes.

Demand magnitudes are calibrated so the *relative* base response times
across types track Table 1 (e.g. PutComment and StoreBid are the most
expensive, SellItemForm the cheapest); absolute values reflect 2008-era
LAMP-ish stacks on a 2.66 GHz core.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...sim import ms, us


@dataclass(frozen=True, slots=True)
class RequestType:
    """One RUBiS request type and its resource profile."""

    name: str
    request_class: str  # "read" or "write"
    #: Mean CPU demand at each tier (ns); zero means the tier is skipped.
    web_demand: int
    app_demand: int
    db_demand: int
    #: Client -> web request size (bytes).
    request_size: int
    #: Web -> client response size (bytes); read responses carry pages and
    #: images, write responses are small confirmations.
    response_size: int
    #: Coefficient of variation of the per-tier demands (lognormal-ish
    #: service-time noise).
    demand_cv: float = 0.25

    def __post_init__(self):
        if self.request_class not in ("read", "write"):
            raise ValueError(f"bad request class {self.request_class!r}")

    @property
    def total_demand(self) -> int:
        """Sum of mean tier demands (ns)."""
        return self.web_demand + self.app_demand + self.db_demand

    @property
    def uses_app(self) -> bool:
        """Whether the request chain reaches the application server."""
        return self.app_demand > 0

    @property
    def uses_db(self) -> bool:
        """Whether the request chain reaches the database server."""
        return self.db_demand > 0


def _rt(
    name: str,
    request_class: str,
    web_ms: float,
    app_ms: float,
    db_ms: float,
    request_size: int = 420,
    response_size: int = 8000,
) -> RequestType:
    return RequestType(
        name=name,
        request_class=request_class,
        web_demand=ms(web_ms),
        app_demand=ms(app_ms),
        db_demand=ms(db_ms),
        request_size=request_size,
        response_size=response_size,
    )


#: The sixteen request types of the paper's Table 1, in table order.
#: Read types are web-tier-heavy (static pages/images), write types are
#: database-heavy (servlets with DB reads/writes) — the §3.1 profile that
#: makes per-phase weight steering meaningful.
REQUEST_TYPES: tuple[RequestType, ...] = (
    _rt("Register", "write", 2.0, 4.5, 7.5, response_size=3000),
    _rt("Browse", "read", 6.0, 2.5, 0.0, response_size=12000),
    _rt("BrowseCategories", "read", 9.5, 3.5, 0.5, response_size=16000),
    _rt("SearchItemsInCategory", "read", 6.5, 3.0, 0.5, response_size=10000),
    _rt("BrowseRegions", "read", 8.0, 3.0, 0.5, response_size=14000),
    _rt("BrowseCategoriesInRegion", "read", 6.8, 2.8, 0.5, response_size=11000),
    _rt("SearchItemsInRegion", "read", 4.2, 2.2, 0.4, response_size=7000),
    _rt("ViewItem", "read", 10.5, 4.5, 1.0, response_size=18000),
    _rt("BuyNow", "write", 1.5, 2.5, 4.0, response_size=2500),
    _rt("PutBidAuth", "write", 2.2, 4.0, 6.5, response_size=3000),
    _rt("PutBid", "write", 2.8, 5.5, 9.0, response_size=4000),
    _rt("StoreBid", "write", 3.0, 7.0, 16.0, response_size=2500),
    _rt("PutComment", "write", 3.2, 8.0, 20.0, response_size=2500),
    _rt("Sell", "write", 2.0, 3.0, 4.5, response_size=3500),
    _rt("SellItemForm", "read", 2.6, 1.2, 0.0, response_size=3000),
    _rt("AboutMe", "write", 2.6, 4.0, 7.0, response_size=5000),
)

BY_NAME: dict[str, RequestType] = {rt.name: rt for rt in REQUEST_TYPES}

READ_TYPES: tuple[RequestType, ...] = tuple(
    rt for rt in REQUEST_TYPES if rt.request_class == "read"
)
WRITE_TYPES: tuple[RequestType, ...] = tuple(
    rt for rt in REQUEST_TYPES if rt.request_class == "write"
)

#: Per-request fixed kernel-side costs at each tier (socket + HTTP parse).
TIER_SYS_OVERHEAD = us(150)
#: Inter-tier call message size (SQL / servlet RPC).
INTER_TIER_REQUEST_SIZE = 600
#: Inter-tier response sizes.
APP_TO_WEB_RESPONSE_SIZE = 4000
DB_TO_APP_RESPONSE_SIZE = 1800
