"""One-call deployment of the paper's RUBiS scenario on the testbed.

Builds the three tier VMs (single VCPU, 256 MB, as in §3.1), the tier
servers, the external client host, the IXP classifier rules (deep packet
inspection recovering the request type), and — when coordination is on —
the request-type Tune policy between the islands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...coordination import RequestTypeTunePolicy, TierEntities
from ...x86.background import GuestBackgroundLoad
from ...ixp import make_payload_field_rule
from ...metrics import CpuUtilizationSampler
from ...sim import ms, seconds
from ...testbed import Testbed, TestbedConfig
from .client import RubisClient
from .tiers import ApplicationServer, DatabaseServer, WebServer
from .workload import BIDDING_MIX, WorkloadMix

WEB_VM = "web-server"
APP_VM = "app-server"
DB_VM = "db-server"
CLIENT_HOST = "rubis-client"


@dataclass(frozen=True)
class RubisConfig:
    """Everything that varies between RUBiS runs."""

    #: The prototype runs the messaging driver in its polling mode
    #: (paper §2.1), so Dom0 is a constant CPU competitor.
    testbed: TestbedConfig = TestbedConfig(driver_poll_burn_duty=0.5)
    mix: WorkloadMix = BIDDING_MIX
    coordinated: bool = False
    num_sessions: int = 90
    requests_per_session: int = 40
    think_time_mean: int = ms(700)
    warmup: int = seconds(8)
    #: Tune step used by the coordination policy.
    tune_step: int = 64
    cpu_sample_window: int = seconds(1)
    #: Guest-OS housekeeping duty cycle per tier VM (kernel ticks, JVM/
    #: MySQL background threads); keeps VCPUs runnable like real guests.
    background_duty: float = 0.10
    #: Drive sessions with the per-type Markov transition table instead of
    #: per-phase class draws (realistic funnels; no global phase control).
    markov_sessions: bool = False


@dataclass
class RubisDeployment:
    """Handles to every component of a deployed RUBiS scenario."""

    config: RubisConfig
    testbed: Testbed
    client: RubisClient
    web: WebServer
    app: ApplicationServer
    db: DatabaseServer
    cpu_sampler: CpuUtilizationSampler
    policy: Optional[RequestTypeTunePolicy] = None

    @property
    def sim(self):
        """The deployment's simulator."""
        return self.testbed.sim

    def run(self, duration: int) -> None:
        """Advance the scenario by ``duration``."""
        self.testbed.run(self.testbed.sim.now + duration)


def deploy_rubis(config: Optional[RubisConfig] = None) -> RubisDeployment:
    """Stand up the full RUBiS scenario, ready to run."""
    config = config or RubisConfig()
    testbed = Testbed(config.testbed)
    rng = testbed.rng

    web_vm, web_nic = testbed.create_guest_vm(WEB_VM)
    app_vm, app_nic = testbed.create_guest_vm(APP_VM)
    db_vm, db_nic = testbed.create_guest_vm(DB_VM)
    for vm in (web_vm, app_vm, db_vm):
        GuestBackgroundLoad(testbed.sim, vm, duty=config.background_duty)

    web = WebServer(testbed.sim, web_vm, web_nic, rng.stream("web-demand"), app_name=APP_VM)
    app = ApplicationServer(
        testbed.sim, app_vm, app_nic, rng.stream("app-demand"), db_name=DB_VM
    )
    db = DatabaseServer(testbed.sim, db_vm, db_nic, rng.stream("db-demand"))

    # The IXP's request classification engine: DPI recovering the request
    # type from client packets (per-VM queueing is separate, keyed on dst).
    testbed.ixp.classifier.add_rule(
        "rubis-request-type", make_payload_field_rule("request_type", prefix="rubis:")
    )

    host = testbed.add_client_host(CLIENT_HOST)
    client = RubisClient(
        testbed.sim,
        host,
        web_server=WEB_VM,
        mix=config.mix,
        rng=rng.stream("client"),
        num_sessions=config.num_sessions,
        requests_per_session=config.requests_per_session,
        think_time_mean=config.think_time_mean,
        warmup=config.warmup,
        markov_sessions=config.markov_sessions,
    )

    policy = None
    if config.coordinated:
        policy = RequestTypeTunePolicy(
            testbed.sim,
            testbed.ixp,
            testbed.ixp_agent,
            TierEntities(
                web=testbed.vm_entity(WEB_VM),
                app=testbed.vm_entity(APP_VM),
                db=testbed.vm_entity(DB_VM),
            ),
            step=config.tune_step,
            tracer=testbed.tracer,
        )

    sampler = CpuUtilizationSampler(
        testbed.sim,
        [testbed.dom0, web_vm, app_vm, db_vm],
        window=config.cpu_sample_window,
    )

    return RubisDeployment(
        config=config,
        testbed=testbed,
        client=client,
        web=web,
        app=app,
        db=db,
        cpu_sampler=sampler,
        policy=policy,
    )
