"""Application models evaluated by the paper: RUBiS and MPlayer."""
