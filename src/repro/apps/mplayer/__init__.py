"""The MPlayer media-player application model."""

from .player import DiskPlayer, MPlayerClient
from .server import BurstProfile, StreamingServer
from .setup import (
    DOM1,
    DOM2,
    MPlayerConfig,
    MPlayerDeployment,
    QOS_BITRATE,
    QOS_FRAMERATE,
    QOS_OFF,
    SERVER_HOST,
    deploy_mplayer,
)
from .streams import (
    DISK_CLIP,
    H264_COST,
    HIGH_RATE_STREAM,
    LOW_RATE_STREAM,
    MPEG4_COST,
    DecodeCostModel,
    StreamSpec,
)

__all__ = [
    "BurstProfile",
    "DISK_CLIP",
    "DOM1",
    "DOM2",
    "DecodeCostModel",
    "DiskPlayer",
    "H264_COST",
    "HIGH_RATE_STREAM",
    "LOW_RATE_STREAM",
    "MPEG4_COST",
    "MPlayerClient",
    "MPlayerConfig",
    "MPlayerDeployment",
    "QOS_BITRATE",
    "QOS_FRAMERATE",
    "QOS_OFF",
    "SERVER_HOST",
    "StreamSpec",
    "StreamingServer",
    "deploy_mplayer",
]
