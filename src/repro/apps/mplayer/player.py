"""The MPlayer client model.

"Mplayer supports a benchmark option that plays out the streams at the
fastest frame rate possible and we also disable video output for all our
tests, just focusing on the decoded frames/sec output as our
application-level quality of service metric" (paper §3.2). The network
player reassembles RTP fragments into frames and decodes them as fast as
its VM gets CPU; the disk player decodes straight from local storage and
is effectively a CPU-bound loop.
"""

from __future__ import annotations

from typing import Optional

from ...sim import Simulator, Store, seconds, us
from ...metrics import WindowedCounter
from ...net import Packet, VirtualNIC
from ...x86.vm import VirtualMachine
from .streams import DecodeCostModel, StreamSpec

#: Guest kernel cost per received RTP packet (UDP + socket delivery).
PER_PACKET_RX_COST = us(10)
#: Guest cost to read one frame from local disk (page-cache hit era).
DISK_READ_COST = us(180)
#: Partial frames older than this are abandoned (fragments lost).
FRAME_ASSEMBLY_TIMEOUT = seconds(1)
#: Decode-queue depth that counts as "fallen behind the live edge". On
#: reaching it the player skips to the newest frame (dropping the rest),
#: like a live-stream player chasing its jitter buffer.
DECODE_QUEUE_LIMIT = 6


class MPlayerClient:
    """Network stream player inside a guest VM."""

    def __init__(
        self,
        sim: Simulator,
        vm: VirtualMachine,
        nic: VirtualNIC,
        cost_model: Optional[DecodeCostModel] = None,
    ):
        self.sim = sim
        self.vm = vm
        self.nic = nic
        self.cost_model = cost_model
        self.decoded = WindowedCounter(sim)
        self.frames_decoded = 0
        self.frames_dropped = 0
        self.frames_skipped = 0
        self.packets_received = 0
        self._assembly: dict[int, dict] = {}
        self._decode_queue: Store[int] = Store(sim, name=f"{vm.name}-decodeq")
        sim.spawn(self._rx_loop(), name=f"{vm.name}-mplayer-rx")
        sim.spawn(self._decode_loop(), name=f"{vm.name}-mplayer-decode")
        sim.spawn(self._assembly_gc(), name=f"{vm.name}-mplayer-gc")

    # -- receive + frame assembly -------------------------------------------

    def _rx_loop(self):
        while True:
            packet: Packet = yield self.nic.recv()
            yield self.vm.execute(PER_PACKET_RX_COST, kind="sys")
            if packet.kind != "rtp":
                continue  # RTSP control traffic
            self.packets_received += 1
            payload = packet.payload
            frame_id = payload["frame_id"]
            entry = self._assembly.setdefault(
                frame_id,
                {"have": 0, "need": payload["frag_count"], "bytes": payload["frame_bytes"],
                 "born": self.sim.now},
            )
            entry["have"] += 1
            if entry["have"] >= entry["need"]:
                del self._assembly[frame_id]
                if len(self._decode_queue) >= DECODE_QUEUE_LIMIT:
                    # Behind the live edge: skip everything queued and
                    # resume from this newest frame. Crucially this lets
                    # the decoder *block* again between frames, so the VM
                    # wakes (and boosts) per frame instead of sitting
                    # runnable forever.
                    while self._decode_queue.try_get() is not None:
                        self.frames_skipped += 1
                self._decode_queue.put(entry["bytes"])

    def _assembly_gc(self):
        while True:
            yield self.sim.timeout(FRAME_ASSEMBLY_TIMEOUT)
            cutoff = self.sim.now - FRAME_ASSEMBLY_TIMEOUT
            stale = [fid for fid, e in self._assembly.items() if e["born"] < cutoff]
            for fid in stale:
                del self._assembly[fid]
                self.frames_dropped += 1

    # -- decode ------------------------------------------------------------------

    def _decode_loop(self):
        while True:
            frame_bytes = yield self._decode_queue.get()
            model = self.cost_model
            if model is None:
                raise RuntimeError(
                    f"player in {self.vm.name} received frames before a cost "
                    "model was configured"
                )
            yield self.vm.execute(model.frame_cost(frame_bytes), kind="user")
            self.frames_decoded += 1
            self.decoded.record()

    # -- metrics --------------------------------------------------------------------

    def fps(self, start: int, end: int) -> float:
        """Mean decoded frames/second over [start, end)."""
        return self.decoded.rate_per_second(start, end)

    @property
    def backlog_frames(self) -> int:
        """Frames assembled but not yet decoded."""
        return len(self._decode_queue)


class DiskPlayer:
    """MPlayer playing a clip from the VM's local disk (Table 3's Dom-2).

    No network involvement at all: a read + decode loop that consumes as
    much CPU as the scheduler will give it.
    """

    def __init__(self, sim: Simulator, vm: VirtualMachine, stream: StreamSpec):
        self.sim = sim
        self.vm = vm
        self.stream = stream
        self.decoded = WindowedCounter(sim)
        self.frames_decoded = 0
        sim.spawn(self._loop(), name=f"{vm.name}-diskplayer")

    def _loop(self):
        demand = self.stream.decode_demand()
        while True:
            yield self.vm.execute(DISK_READ_COST, kind="sys")
            yield self.vm.execute(demand, kind="user")
            self.frames_decoded += 1
            self.decoded.record()

    def fps(self, start: int, end: int) -> float:
        """Mean decoded frames/second over [start, end)."""
        return self.decoded.rate_per_second(start, end)
