"""Video stream specifications and the decode cost model.

"Retrieving video streams and playing them requires decoding the codec
used by the stream. This is a fairly high CPU-intensive task. The amount
of CPU usage necessary ... depends on certain stream characteristics, such
as the type of codec, resolution, frame- and bit-rate" (paper §3.2). The
cost model is affine in the frame's bits with a large per-frame constant —
software h.264 on a 2.66 GHz core is dominated by per-frame work
(prediction, deblocking) plus an entropy-decode term that scales with
bitrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...sim import ms

#: RTP payload bytes per packet.
RTP_PACKET_BYTES = 1400


@dataclass(frozen=True, slots=True)
class DecodeCostModel:
    """CPU cost to decode one frame: ``per_frame + per_bit * bits``."""

    per_frame_ns: int = ms(23.0)
    per_bit_ns: float = 98.0  # 0.098 us per bit of frame payload

    def frame_cost(self, frame_bytes: int) -> int:
        """Decode demand (ns) for a frame of the given size."""
        return round(self.per_frame_ns + self.per_bit_ns * frame_bytes * 8)


#: Default software-decode cost model (h.264-class).
H264_COST = DecodeCostModel()
#: Lighter codec for local SD clips (MPEG-4 ASP-class): ~80 frames/s of
#: decode throughput on one full core, matching Table 3's disk player.
MPEG4_COST = DecodeCostModel(per_frame_ns=ms(10.3), per_bit_ns=10.0)


@dataclass(frozen=True, slots=True)
class StreamSpec:
    """One video stream's nominal properties."""

    name: str
    bitrate_bps: int
    framerate_fps: float
    codec: str = "h264"
    cost_model: DecodeCostModel = H264_COST

    def __post_init__(self):
        if self.bitrate_bps <= 0 or self.framerate_fps <= 0:
            raise ValueError("bitrate and framerate must be positive")

    @property
    def frame_bytes(self) -> int:
        """Mean encoded frame size."""
        return max(1, round(self.bitrate_bps / 8 / self.framerate_fps))

    @property
    def frame_interval(self) -> int:
        """Nominal inter-frame pacing in clock ticks."""
        return round(1e9 / self.framerate_fps)

    def decode_demand(self) -> int:
        """CPU demand to decode one nominal frame."""
        return self.cost_model.frame_cost(self.frame_bytes)

    def cpu_share_required(self) -> float:
        """Fraction of one core needed to decode at full frame rate."""
        return self.decode_demand() * self.framerate_fps / 1e9


#: The paper's Figure 6 streams (costs calibrated against its ladder).
LOW_RATE_STREAM = StreamSpec("low-rate", bitrate_bps=300_000, framerate_fps=20.0)
HIGH_RATE_STREAM = StreamSpec("high-rate", bitrate_bps=1_000_000, framerate_fps=25.0)
#: Table 3's local-disk clip for the interference experiment.
DISK_CLIP = StreamSpec(
    "disk-clip", bitrate_bps=800_000, framerate_fps=25.0, codec="mpeg4", cost_model=MPEG4_COST
)
