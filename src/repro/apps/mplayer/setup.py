"""One-call deployment of the paper's MPlayer scenarios.

Two guest VMs (256 MB, single VCPU, §3.2) play video: from the network via
the IXP (classified per destination VM), or — for the interference
experiment — from local disk. Coordination options mirror the paper's two
schemes: the stream-property Tune policy (with its frame-rate second
stage + tandem IXP thread tune) and the buffer-monitoring Trigger policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...coordination import (
    BufferMonitorTriggerPolicy,
    StreamQoSTunePolicy,
    DEFAULT_THRESHOLD_BYTES,
)
from ...ixp import classify_by_destination
from ...metrics import CpuUtilizationSampler
from ...sim import ms, seconds
from ...testbed import Testbed, TestbedConfig
from ...x86 import X86Params
from ...x86.background import GuestBackgroundLoad
from .player import DiskPlayer, MPlayerClient
from .server import BurstProfile, StreamingServer
from .streams import DISK_CLIP, HIGH_RATE_STREAM, LOW_RATE_STREAM, StreamSpec

DOM1 = "mplayer-1"
DOM2 = "mplayer-2"
SERVER_HOST = "darwin-server"

#: Coordination stages for the Figure 6 ladder.
QOS_OFF = "off"
QOS_BITRATE = "bitrate"  # stage B: bit-rate driven weight increases
QOS_FRAMERATE = "framerate"  # stage C: + frame-rate reward + IXP threads


@dataclass(frozen=True)
class MPlayerConfig:
    """Everything that varies between MPlayer runs."""

    #: The streaming scenario runs the polling driver hot and provisions
    #: Dom0 as a heavyweight driver domain (see DESIGN.md §5).
    testbed: TestbedConfig = TestbedConfig(
        driver_poll_burn_duty=1.0, x86=X86Params(dom0_weight=512)
    )
    dom1_stream: StreamSpec = LOW_RATE_STREAM
    dom2_stream: StreamSpec = HIGH_RATE_STREAM
    #: Dom2 plays from local disk instead of the network (Table 3).
    dom2_disk: bool = False
    dom2_disk_clip: StreamSpec = DISK_CLIP
    #: Burst profile for Dom1's stream (Figure 7's UDP bulk case).
    dom1_burst: Optional[BurstProfile] = None
    #: Stream-property Tune policy stage (Figure 6).
    qos_stage: str = QOS_OFF
    #: Enable the buffer-monitoring Trigger policy (Figure 7 / Table 3).
    buffer_trigger: bool = False
    trigger_threshold: int = DEFAULT_THRESHOLD_BYTES
    #: Minimum spacing between triggers per VM.
    trigger_cooldown: int = ms(150)
    #: Poll interval of the IXP dequeue threads serving Dom1's flow queue
    #: (0 = event-driven). A finite ingress service rate is what lets the
    #: DRAM buffer absorb — and expose — traffic bursts (Figure 7).
    dom1_ixp_poll_interval: int = 0
    #: Guest housekeeping duty per player VM.
    background_duty: float = 0.04
    #: Netfront RX ring depth of the player VMs, in packets. Real rings
    #: are shallow; a starved player loses packets rather than buffering
    #: minutes of video.
    nic_rx_capacity: int = 128
    cpu_sample_window: int = seconds(1)


@dataclass
class MPlayerDeployment:
    """Handles to a deployed MPlayer scenario."""

    config: MPlayerConfig
    testbed: Testbed
    server: StreamingServer
    dom1_player: MPlayerClient
    dom2_player: Optional[MPlayerClient]
    dom2_disk_player: Optional[DiskPlayer]
    cpu_sampler: CpuUtilizationSampler
    qos_policy: Optional[StreamQoSTunePolicy] = None
    trigger_policy: Optional[BufferMonitorTriggerPolicy] = None

    @property
    def sim(self):
        """The deployment's simulator."""
        return self.testbed.sim

    def run(self, duration: int) -> None:
        """Advance the scenario by ``duration``."""
        self.testbed.run(self.testbed.sim.now + duration)

    def dom1_fps(self, start: int, end: int) -> float:
        """Dom1 decoded frames/second over a window."""
        return self.dom1_player.fps(start, end)

    def dom2_fps(self, start: int, end: int) -> float:
        """Dom2 decoded frames/second over a window."""
        if self.dom2_player is not None:
            return self.dom2_player.fps(start, end)
        if self.dom2_disk_player is not None:
            return self.dom2_disk_player.fps(start, end)
        raise RuntimeError("no Dom2 player deployed")


def deploy_mplayer(config: Optional[MPlayerConfig] = None) -> MPlayerDeployment:
    """Stand up an MPlayer scenario, ready to run."""
    config = config or MPlayerConfig()
    testbed = Testbed(config.testbed)

    vm1, nic1 = testbed.create_guest_vm(DOM1, nic_rx_capacity=config.nic_rx_capacity)
    vm2, nic2 = testbed.create_guest_vm(
        DOM2, uses_ixp=not config.dom2_disk, nic_rx_capacity=config.nic_rx_capacity
    )
    for vm in (vm1, vm2):
        GuestBackgroundLoad(testbed.sim, vm, duty=config.background_duty)

    # "The IXP processor classifies incoming streams based on virtual
    # machine IP address that hosts the MPlayer client."
    testbed.ixp.classifier.add_rule("stream-by-destination", classify_by_destination)
    if config.dom1_ixp_poll_interval > 0:
        testbed.ixp.flow_queues[DOM1].poll_interval = config.dom1_ixp_poll_interval

    host = testbed.add_client_host(SERVER_HOST)
    server = StreamingServer(testbed.sim, host, testbed.rng.stream("darwin"))

    dom1_player = MPlayerClient(
        testbed.sim, vm1, nic1, cost_model=config.dom1_stream.cost_model
    )
    server.start_session(config.dom1_stream, DOM1, burst=config.dom1_burst)

    dom2_player = None
    dom2_disk_player = None
    if config.dom2_disk:
        dom2_disk_player = DiskPlayer(testbed.sim, vm2, config.dom2_disk_clip)
    else:
        dom2_player = MPlayerClient(
            testbed.sim, vm2, nic2, cost_model=config.dom2_stream.cost_model
        )
        server.start_session(config.dom2_stream, DOM2, burst=None, start_delay=ms(150))

    vm_entities = {DOM1: testbed.vm_entity(DOM1), DOM2: testbed.vm_entity(DOM2)}

    # The QoS policy is always attached (it learns stream state from the
    # RTSP taps) and starts at the configured stage; experiments escalate
    # it at runtime with ``advance_stage`` the way the paper's Figure 6
    # narrative does.
    qos_policy = StreamQoSTunePolicy(
        testbed.sim,
        testbed.ixp,
        testbed.ixp_agent,
        vm_entities,
        stage=config.qos_stage,
        tracer=testbed.tracer,
    )

    trigger_policy = None
    if config.buffer_trigger:
        trigger_policy = BufferMonitorTriggerPolicy(
            testbed.sim,
            testbed.ixp,
            testbed.ixp_agent,
            {DOM1: vm_entities[DOM1]},
            threshold_bytes=config.trigger_threshold,
            cooldown=config.trigger_cooldown,
            tracer=testbed.tracer,
        )

    sampler = CpuUtilizationSampler(
        testbed.sim, [testbed.dom0, vm1, vm2], window=config.cpu_sample_window
    )

    return MPlayerDeployment(
        config=config,
        testbed=testbed,
        server=server,
        dom1_player=dom1_player,
        dom2_player=dom2_player,
        dom2_disk_player=dom2_disk_player,
        cpu_sampler=sampler,
        qos_policy=qos_policy,
        trigger_policy=trigger_policy,
    )
