"""The Darwin-like streaming server.

"A Darwin Quicktime streaming server is deployed on an external machine,
serving video streams over RTSP and UDP" (paper §3.2). Session setup sends
an RTSP packet carrying the stream properties (what the IXP's
stream-property policy taps), then RTP fragments flow at the nominal frame
pacing — or in configured bursts for the no-flow-control UDP bulk case of
Figure 7.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ...sim import RandomStream, Simulator, ms, seconds
from ...net import Packet
from ...testbed import ClientHost
from .streams import RTP_PACKET_BYTES, StreamSpec

_session_ids = itertools.count(1)

#: RTSP session setup message size.
RTSP_SETUP_BYTES = 460


@dataclass(frozen=True, slots=True)
class BurstProfile:
    """Periodic send-rate bursts (UDP bulk with no flow control)."""

    period_s: float = 20.0
    duration_s: float = 3.0
    factor: float = 3.0

    def __post_init__(self):
        if self.factor < 1.0:
            raise ValueError("burst factor must be >= 1")
        if not 0 < self.duration_s < self.period_s:
            raise ValueError("burst duration must be within the period")


class StreamingServer:
    """Streams video to MPlayer clients inside guest VMs."""

    def __init__(self, sim: Simulator, host: ClientHost, rng: RandomStream):
        self.sim = sim
        self.host = host
        self.rng = rng
        self.sessions_started = 0
        self.frames_sent: dict[str, int] = {}

    def start_session(
        self,
        stream: StreamSpec,
        dst_vm: str,
        burst: Optional[BurstProfile] = None,
        start_delay: int = ms(100),
    ) -> None:
        """Begin streaming ``stream`` toward ``dst_vm``."""
        self.sessions_started += 1
        self.frames_sent[dst_vm] = 0
        self.sim.spawn(
            self._session(stream, dst_vm, burst, start_delay),
            name=f"stream-{dst_vm}",
        )

    def _session(self, stream: StreamSpec, dst_vm: str, burst: Optional[BurstProfile],
                 start_delay: int):
        yield self.sim.timeout(start_delay)
        session_id = next(_session_ids)
        setup = Packet(
            src=self.host.name,
            dst=dst_vm,
            size=RTSP_SETUP_BYTES,
            kind="rtsp-setup",
            payload={
                "rtsp_setup": {
                    "session": session_id,
                    "bitrate_bps": stream.bitrate_bps,
                    "framerate_fps": stream.framerate_fps,
                    "codec": stream.codec,
                },
            },
        )
        self.host.nic.send(setup)
        yield self.sim.timeout(ms(50))  # RTSP handshake settling

        frame_id = 0
        burst_clock = 0
        while True:
            interval = stream.frame_interval
            if burst is not None:
                phase = burst_clock % seconds(burst.period_s)
                if phase < seconds(burst.duration_s):
                    interval = round(interval / burst.factor)
            self._send_frame(stream, dst_vm, session_id, frame_id)
            frame_id += 1
            self.frames_sent[dst_vm] += 1
            yield self.sim.timeout(interval)
            burst_clock += interval

    def _send_frame(self, stream: StreamSpec, dst_vm: str, session_id: int,
                    frame_id: int) -> None:
        # Frame sizes wobble around the mean (rate control is not exact).
        size = max(200, round(self.rng.bounded_normal(
            stream.frame_bytes, stream.frame_bytes * 0.15, minimum=stream.frame_bytes * 0.4
        )))
        fragments = []
        remaining = size
        while remaining > 0:
            take = min(RTP_PACKET_BYTES, remaining)
            fragments.append(take)
            remaining -= take
        count = len(fragments)
        for index, frag_size in enumerate(fragments):
            packet = Packet(
                src=self.host.name,
                dst=dst_vm,
                size=frag_size,
                kind="rtp",
                payload={
                    "session": session_id,
                    "frame_id": frame_id,
                    "frag_index": index,
                    "frag_count": count,
                    "frame_bytes": size,
                },
            )
            self.host.nic.send(packet)
