"""Declarative fabric topologies: clusters, links, latencies, fanout.

The paper's prototype wires two islands by hand; its §5 future work asks
about scaling coordination to large-scale multicore platforms. A
:class:`FabricTopology` is the declarative answer: it names island
clusters (each with a local *aggregator* node), the link latencies
inside and between clusters, and any extra peer links (a gossip ring).
:class:`~repro.platform.mesh.CoordinationMesh` and
:class:`~repro.testbed.FabricTestbed` consume the spec to build K-island
platforms, and the directory layer
(:mod:`repro.platform.directory`) uses the same spec to decide where
discovery messages land — so changing the fabric shape is a one-line
edit to the topology, never a rewiring of the platform.

Three canonical shapes, one per coordination style:

* :meth:`FabricTopology.star` — every island in one cluster behind a
  single hub (the centralized baseline; message concentration O(K)).
* :meth:`FabricTopology.clustered` — islands chunked into clusters of
  ``fanout`` behind local aggregators, aggregators behind a root
  (hierarchical; concentration O(fanout)).
* :meth:`FabricTopology.ring` — every island its own cluster, linked in
  a cycle with no aggregation hierarchy (the gossip substrate;
  concentration O(1) per node).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim import ms, us

#: Default one-way latency of an intra-cluster coordination link.
DEFAULT_LINK_LATENCY = us(150)


@dataclass(frozen=True)
class ClusterSpec:
    """One island cluster: a named group with a local aggregator node.

    The aggregator is the cluster's coordination locus — intra-cluster
    links star onto it, load reports coalesce at it, and the hierarchical
    directory keeps the cluster's ownership table there. Defaults to the
    first island in the cluster.
    """

    name: str
    islands: tuple[str, ...]
    aggregator: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "islands", tuple(self.islands))
        if not self.islands:
            raise ValueError(f"cluster {self.name!r} has no islands")
        if len(set(self.islands)) != len(self.islands):
            raise ValueError(f"cluster {self.name!r} repeats an island name")
        if self.aggregator is None:
            object.__setattr__(self, "aggregator", self.islands[0])
        elif self.aggregator not in self.islands:
            raise ValueError(
                f"aggregator {self.aggregator!r} is not in cluster {self.name!r}"
            )


@dataclass(frozen=True)
class FabricTopology:
    """A declarative K-island fabric: clusters, links and timing.

    ``connect_aggregators`` links every non-root aggregator to the root
    aggregator (the hierarchy's trunk); ring-style fabrics turn it off
    and wire ``extra_links`` instead.
    """

    clusters: tuple[ClusterSpec, ...]
    #: One-way latency of intra-cluster (member <-> aggregator) links and
    #: of ``extra_links``.
    link_latency: int = DEFAULT_LINK_LATENCY
    #: One-way latency of aggregator <-> root uplinks (defaults to twice
    #: the intra-cluster latency: uplinks cross the fabric spine).
    uplink_latency: Optional[int] = None
    #: Link every non-root aggregator to the root aggregator.
    connect_aggregators: bool = True
    #: Additional point-to-point links (e.g. the gossip ring's cycle).
    extra_links: tuple[tuple[str, str], ...] = ()
    #: Anti-entropy round period of a gossip directory over this fabric.
    gossip_period: int = ms(50)
    #: Upward load-report coalescing period of a hierarchical directory.
    aggregate_period: int = ms(100)

    def __post_init__(self) -> None:
        object.__setattr__(self, "clusters", tuple(self.clusters))
        object.__setattr__(
            self, "extra_links", tuple(tuple(pair) for pair in self.extra_links)
        )
        if not self.clusters:
            raise ValueError("a fabric needs at least one cluster")
        names = [cluster.name for cluster in self.clusters]
        if len(set(names)) != len(names):
            raise ValueError("cluster names must be unique")
        islands: list[str] = []
        for cluster in self.clusters:
            islands.extend(cluster.islands)
        if len(set(islands)) != len(islands):
            raise ValueError("an island may belong to only one cluster")
        known = set(islands)
        for a, b in self.extra_links:
            if a == b:
                raise ValueError(f"extra link {a!r}<->{b!r} is a self-link")
            if a not in known or b not in known:
                raise ValueError(f"extra link {a!r}<->{b!r} names an unknown island")
        if self.link_latency < 0:
            raise ValueError("link_latency must be non-negative")
        if self.uplink_latency is not None and self.uplink_latency < 0:
            raise ValueError("uplink_latency must be non-negative")
        if self.gossip_period <= 0 or self.aggregate_period <= 0:
            raise ValueError("gossip_period and aggregate_period must be positive")

    # -- canonical shapes ---------------------------------------------------

    @classmethod
    def star(cls, islands, hub: Optional[str] = None, **kwargs) -> "FabricTopology":
        """One cluster, every island behind ``hub`` (centralized)."""
        islands = tuple(islands)
        if hub is not None and hub not in islands:
            raise ValueError(f"hub {hub!r} is not among the islands")
        return cls(
            clusters=(ClusterSpec("fabric", islands, aggregator=hub),), **kwargs
        )

    @classmethod
    def clustered(cls, islands, fanout: int = 8, **kwargs) -> "FabricTopology":
        """Chunk ``islands`` into clusters of ``fanout`` behind local
        aggregators; aggregators link to the first cluster's (the root)."""
        islands = tuple(islands)
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        clusters = tuple(
            ClusterSpec(f"cluster-{i // fanout}", islands[i:i + fanout])
            for i in range(0, len(islands), fanout)
        )
        return cls(clusters=clusters, **kwargs)

    @classmethod
    def ring(cls, islands, **kwargs) -> "FabricTopology":
        """Every island its own cluster, linked in a cycle — the flat
        peer-to-peer substrate a gossip directory disseminates over."""
        islands = tuple(islands)
        if len(islands) < 2:
            raise ValueError("a ring needs at least two islands")
        clusters = tuple(ClusterSpec(name, (name,)) for name in islands)
        links = tuple(
            (islands[i], islands[(i + 1) % len(islands)])
            for i in range(len(islands))
            if len(islands) > 2 or i == 0  # a 2-ring is a single link
        )
        return cls(
            clusters=clusters, connect_aggregators=False, extra_links=links, **kwargs
        )

    # -- lookups ------------------------------------------------------------

    @property
    def islands(self) -> tuple[str, ...]:
        """Every island name, in cluster order."""
        return tuple(
            name for cluster in self.clusters for name in cluster.islands
        )

    @property
    def aggregators(self) -> tuple[str, ...]:
        """Every cluster's aggregator, in cluster order."""
        return tuple(cluster.aggregator for cluster in self.clusters)

    @property
    def root(self) -> str:
        """The fabric root: the first cluster's aggregator."""
        return self.clusters[0].aggregator

    @property
    def effective_uplink_latency(self) -> int:
        """The aggregator <-> root latency actually wired."""
        if self.uplink_latency is not None:
            return self.uplink_latency
        return 2 * self.link_latency

    def cluster_of(self, island: str) -> ClusterSpec:
        """The cluster ``island`` belongs to; KeyError if unknown."""
        for cluster in self.clusters:
            if island in cluster.islands:
                return cluster
        raise KeyError(f"no cluster contains island {island!r}")

    def cluster_named(self, name: str) -> ClusterSpec:
        """The cluster called ``name``; KeyError if unknown."""
        for cluster in self.clusters:
            if cluster.name == name:
                return cluster
        raise KeyError(f"no cluster named {name!r}")

    def aggregator_of(self, island: str) -> str:
        """The aggregator responsible for ``island``."""
        return self.cluster_of(island).aggregator

    def links(self) -> list[tuple[str, str, int]]:
        """Every physical link as ``(a, b, one_way_latency)``, deduplicated:
        intra-cluster stars onto aggregators, aggregator -> root uplinks
        (when ``connect_aggregators``), and the extra peer links."""
        seen: set[frozenset] = set()
        links: list[tuple[str, str, int]] = []

        def add(a: str, b: str, latency: int) -> None:
            key = frozenset((a, b))
            if a != b and key not in seen:
                seen.add(key)
                links.append((a, b, latency))

        for cluster in self.clusters:
            for name in cluster.islands:
                add(cluster.aggregator, name, self.link_latency)
        if self.connect_aggregators:
            for cluster in self.clusters:
                add(self.root, cluster.aggregator, self.effective_uplink_latency)
        for a, b in self.extra_links:
            add(a, b, self.link_latency)
        return links

    # -- shard planning -----------------------------------------------------

    def cross_cluster_links(self) -> list[tuple[str, str, int]]:
        """The links whose endpoints live in *different* clusters.

        These are the only links a cluster-respecting shard cut can ever
        sever, so their minimum latency bounds how far one shard's clock
        may safely run ahead of another's (the conservative lookahead).
        """
        return [
            (a, b, latency)
            for a, b, latency in self.links()
            if self.cluster_of(a).name != self.cluster_of(b).name
        ]

    def min_cross_cluster_latency(self) -> Optional[int]:
        """The conservative synchronization lookahead this fabric offers:
        the minimum one-way latency of any cross-cluster link. A message
        sent in the window ``[T, T+L)`` cannot arrive before ``T+L``, so
        shards advancing in lockstep windows of this width never receive
        a message from their past. None for single-cluster fabrics (no
        cross-cluster link to bound anything)."""
        latencies = [latency for _a, _b, latency in self.cross_cluster_links()]
        return min(latencies) if latencies else None

    def partition(self, shards: int) -> tuple[tuple[str, ...], ...]:
        """Partition the clusters into ``shards`` contiguous groups of
        near-equal island count — the shard boundaries of the sharded
        execution mode.

        Clusters are never split (a cluster's islands coordinate through
        local state, so a cut inside one would need zero-latency
        synchronization); the cut always falls *between* clusters, where
        the declared link latencies provide lookahead. Assignment is
        greedy in declaration order: each cluster joins the current group
        until that group's island count reaches its fair share. The
        result depends only on the topology and ``shards`` — never on
        worker count or process placement.
        """
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if shards > len(self.clusters):
            raise ValueError(
                f"cannot cut {len(self.clusters)} cluster(s) into {shards} "
                "shards; cluster boundaries are the only legal cut points"
            )
        total = len(self)
        groups: list[list[str]] = [[]]
        filled = 0
        for index, cluster in enumerate(self.clusters):
            remaining_clusters = len(self.clusters) - index
            remaining_groups = shards - len(groups) + 1
            group_size = sum(
                len(c.islands) for c in self.clusters
                if c.name in groups[-1]
            )
            # Close the group once it has its fair share of the islands
            # still unassigned — but never so late that the remaining
            # clusters cannot populate the remaining groups.
            fair = (total - filled + remaining_groups - 1) // remaining_groups
            must_close = remaining_clusters == remaining_groups - 1
            if groups[-1] and (group_size >= fair or must_close):
                filled += group_size
                groups.append([])
            groups[-1].append(cluster.name)
        return tuple(tuple(group) for group in groups)

    def next_hop(self, frm: str, to: str) -> Optional[str]:
        """The neighbour ``frm`` should relay through to reach ``to``.

        Direct links win; otherwise the hierarchy is walked (member ->
        aggregator -> root -> aggregator -> member). Fabrics without an
        aggregation trunk (rings) route around the cycle when one exists.
        Returns None when the topology offers no path.
        """
        if frm == to:
            return None
        directs = {frozenset((a, b)) for a, b, _latency in self.links()}
        if frozenset((frm, to)) in directs:
            return to
        if self.connect_aggregators:
            # Walk up toward the root, then down toward the target.
            own = self.aggregator_of(frm)
            if frm != own:
                return own
            if frm != self.root:
                return self.root
            target = self.aggregator_of(to)
            return target if target != frm else to
        cycle = self._ring_order()
        if cycle and frm in cycle and to in cycle:
            # Relay around the ring in whichever direction is shorter.
            size = len(cycle)
            i, j = cycle.index(frm), cycle.index(to)
            forward = (j - i) % size
            step = 1 if forward <= size - forward else -1
            return cycle[(i + step) % size]
        return None

    def _ring_order(self) -> list[str]:
        """The cycle order of ``extra_links`` when they form one ring."""
        neighbors: dict[str, list[str]] = {}
        for a, b in self.extra_links:
            neighbors.setdefault(a, []).append(b)
            neighbors.setdefault(b, []).append(a)
        if len(self.extra_links) == 1 and len(neighbors) == 2:
            return list(neighbors)  # a 2-ring collapses to one link
        if not neighbors or any(len(adj) != 2 for adj in neighbors.values()):
            return []
        start = next(iter(neighbors))
        order = [start]
        previous, current = None, start
        while True:
            options = [n for n in neighbors[current] if n != previous]
            if not options:
                return []
            previous, current = current, options[0]
            if current == start:
                break
            order.append(current)
        return order if len(order) == len(neighbors) else []

    def __len__(self) -> int:
        return sum(len(cluster.islands) for cluster in self.clusters)
