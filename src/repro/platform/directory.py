"""The directory layer: pluggable entity-ownership and health registries.

The paper's prototype registers every island with one global controller
(§2.3) — fine for two islands, a scaling wall for hundreds. This module
extracts the controller's duties (entity ownership, channel health, peer
health, actuation introspection, the observatory) behind a
:class:`Directory` contract with three interchangeable implementations:

* :class:`CentralDirectory` — today's behaviour and the audit baseline:
  one authoritative table, every discovery message lands on the hub
  (O(K) concentration). :class:`~repro.platform.GlobalController` is
  this class under its paper-era name.
* :class:`HierarchicalDirectory` — island clusters with local aggregator
  nodes (shape declared by a :class:`~repro.platform.fabric.
  FabricTopology`): cluster-local ownership tables at aggregators, a
  root table mapping entities to clusters, load reports coalesced
  upward once per aggregation period, and Tunes fanned downward through
  each island's PR-3 knob registry. Concentration O(fanout).
* :class:`GossipDirectory` — no rendezvous point at all: every node
  holds a *view* of entity-ownership and peer-health records, and an
  anti-entropy round (a deterministic :class:`~repro.sim.PeriodicTask`)
  push-pull merges views pairwise. Records carry ``(epoch, version)``
  stamps riding the PR-5 fault-domain idiom, so a node that rejoins
  after a partition reconciles instead of resurrecting stale ownership.
  Concentration O(1) per node per round.

All three keep *message accounting* per node (:meth:`DirectoryBase.
message_counts`): the fabric experiment's concentration measurements
read straight out of the directory, no tracing required. Ownership moves
(an entity re-registering from a different island) are counted and
traced (``entity-moved``) instead of silently overwritten — the fabric
era's handoffs are observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Protocol, runtime_checkable

from ..sim import PeriodicTask, RandomStream, RandomStreams, Simulator, Tracer, ms
from .fabric import FabricTopology
from .identity import EntityId
from .island import Island
from .protocols import HealthSource, Observatory, StatsChannel


class UnknownEntityError(KeyError):
    """Raised when a coordination message names an unregistered entity."""


@runtime_checkable
class Directory(Protocol):
    """What a control-plane directory must provide.

    Structural contract implemented by :class:`CentralDirectory`,
    :class:`HierarchicalDirectory` and :class:`GossipDirectory` (and, by
    inheritance, the legacy :class:`~repro.platform.GlobalController`).
    Anything consuming "the controller" — testbeds, meshes, agents,
    metrics collectors — should require no more than this.
    """

    def register_island(self, island: Island) -> None: ...

    def note_entity(self, island: Island, entity_id: EntityId) -> None: ...

    def owner_of(self, entity_id: EntityId) -> Island: ...

    def lookup(self, entity_id: EntityId, frm: Optional[str] = None) -> Optional[str]: ...

    def known_entities(self) -> list[EntityId]: ...

    def island(self, name: str) -> Island: ...

    def islands(self) -> Iterable[Island]: ...

    def register_channel(self, name: str, channel: StatsChannel) -> None: ...

    def channel_health(self) -> dict[str, dict]: ...

    def register_health(self, name: str, source: HealthSource) -> None: ...

    def health(self) -> dict[str, dict]: ...

    def knob_snapshot(self) -> dict[str, dict]: ...

    def message_counts(self) -> dict[str, int]: ...


@dataclass(frozen=True, slots=True)
class OwnershipRecord:
    """One versioned entity-ownership fact, as gossip disseminates it.

    ``(epoch, version)`` orders records: the epoch bumps on ownership
    moves and post-partition rejoins (the PR-5 recovery idiom), the
    version on every re-registration. Higher tuples win reconciliation.
    """

    entity: EntityId
    owner: str
    epoch: int
    version: int
    stamped_at: int

    @property
    def stamp(self) -> tuple[int, int]:
        return (self.epoch, self.version)


@dataclass(frozen=True, slots=True)
class PeerRecord:
    """One node's gossiped liveness claim about itself.

    ``heartbeat`` increments every round the node participates in;
    ``epoch`` bumps when the node rejoins after isolation. A record that
    stops advancing is the epidemic analogue of a missed heartbeat."""

    node: str
    epoch: int
    heartbeat: int
    stamped_at: int

    @property
    def stamp(self) -> tuple[int, int]:
        return (self.epoch, self.heartbeat)


class DirectoryBase:
    """Shared machinery of every directory implementation.

    Holds the island/channel/health/observatory registries (identical
    across fabrics), per-node message accounting, partition bookkeeping
    (:meth:`isolate` / :meth:`heal`) and the entity-moved audit.
    Ownership storage and resolution are the strategy subclasses vary.
    """

    #: Whether registrations from an isolated island defer until heal
    #: (true for fabrics with a rendezvous point the registration RPC
    #: cannot reach; gossip overrides — an isolated node still records
    #: facts in its own view and spreads them after the heal).
    _defers_when_isolated = True

    def __init__(self, sim: Simulator, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._islands: dict[str, Island] = {}
        self._channels: dict[str, StatsChannel] = {}
        self._health_sources: dict[str, HealthSource] = {}
        #: The attached control-loop observatory (a
        #: :class:`~repro.obs.ControlLoopCollector`), when tracing is on.
        self._observatory: Optional[Observatory] = None
        #: Entities that re-registered from a different island — counted
        #: and traced (``entity-moved``), never silently overwritten.
        self.entity_moves = 0
        self._node_messages: dict[str, int] = {}
        self._isolated: set[str] = set()
        self._pending_registrations: list[tuple[str, EntityId]] = []
        self._registered_at: dict[EntityId, int] = {}
        self._visible_at: dict[EntityId, int] = {}

    # -- island registration ----------------------------------------------

    def register_island(self, island: Island) -> None:
        """Admit an island (and any entities it already knows about)."""
        if island.name in self._islands:
            raise ValueError(f"island {island.name!r} already registered")
        self._islands[island.name] = island
        self._admit_island(island)
        island.attach_controller(self)
        for entity_id in island.entities():
            self.note_entity(island, entity_id)
        self.tracer.emit("controller", "island-registered", island=island.name)

    def note_entity(self, island: Island, entity_id: EntityId) -> None:
        """Record that ``entity_id`` lives on ``island``.

        A re-registration from a *different* island is an ownership
        handoff: it is applied (latest registration wins, as before) but
        now counted in :attr:`entity_moves` and traced as
        ``entity-moved`` so fabric-era migrations are observable.
        Registrations from an isolated island defer until :meth:`heal`
        (except under gossip — see the class docstring).
        """
        if self._defers_when_isolated and island.name in self._isolated:
            self._pending_registrations.append((island.name, entity_id))
            self.tracer.emit(
                "controller", "entity-deferred", island=island.name,
                entity=str(entity_id),
            )
            return
        self._admit_entity(island.name, entity_id)

    def _admit_entity(self, island_name: str, entity_id: EntityId) -> None:
        previous = self.owner_name(entity_id)
        moved = previous is not None and previous != island_name
        if moved:
            self.entity_moves += 1
            self.tracer.emit(
                "controller", "entity-moved", entity=str(entity_id),
                frm=previous, to=island_name,
            )
        self._registered_at[entity_id] = self.sim.now
        self._record_owner(island_name, entity_id, moved=moved)
        self.tracer.emit(
            "controller", "entity-registered", island=island_name,
            entity=str(entity_id),
        )

    # -- ownership strategy (subclass responsibility) ----------------------

    def _admit_island(self, island: Island) -> None:
        """Hook: per-implementation island bookkeeping (default none)."""

    def _record_owner(self, island_name: str, entity_id: EntityId, moved: bool) -> None:
        raise NotImplementedError

    def owner_name(self, entity_id: EntityId) -> Optional[str]:
        """The authoritative owning island's name, or None if unknown.

        Free of message accounting: this is the oracle view used by
        audits and by :meth:`note_entity`'s move detection, not the
        distributed read path (:meth:`lookup`).
        """
        raise NotImplementedError

    def lookup(self, entity_id: EntityId, frm: Optional[str] = None) -> Optional[str]:
        """Resolve ``entity_id`` to an owning island name from node
        ``frm``'s vantage point, accounting the discovery messages the
        resolution costs. None when (locally) unknown."""
        raise NotImplementedError

    # -- lookups ------------------------------------------------------------

    def owner_of(self, entity_id: EntityId) -> Island:
        """The island that owns ``entity_id``."""
        island_name = self.owner_name(entity_id)
        if island_name is None:
            raise UnknownEntityError(f"no island has registered entity {entity_id}")
        return self._islands[island_name]

    def island(self, name: str) -> Island:
        """The island registered under ``name``; KeyError if unknown."""
        return self._islands[name]

    def islands(self) -> Iterable[Island]:
        """All registered islands, in registration order."""
        return list(self._islands.values())

    def known_entities(self) -> list[EntityId]:
        """Every entity registered platform-wide."""
        return list(self._registered_at)

    # -- partitions ----------------------------------------------------------

    def isolate(self, island_name: str) -> None:
        """Partition ``island_name`` away from the discovery plane."""
        if island_name not in self._isolated:
            self._isolated.add(island_name)
            self.tracer.emit("controller", "node-isolated", island=island_name)

    def heal(self, island_name: str) -> None:
        """Heal the partition: flush deferred registrations, let the
        implementation reconcile (gossip bumps the node's epoch)."""
        if island_name not in self._isolated:
            return
        self._isolated.discard(island_name)
        self.tracer.emit("controller", "node-healed", island=island_name)
        self._on_heal(island_name)
        pending = [(name, e) for name, e in self._pending_registrations
                   if name == island_name]
        self._pending_registrations = [
            (name, e) for name, e in self._pending_registrations
            if name != island_name
        ]
        for name, entity_id in pending:
            self._admit_entity(name, entity_id)

    def _on_heal(self, island_name: str) -> None:
        """Hook: implementation-specific rejoin work (default none)."""

    def isolated(self) -> frozenset:
        """Currently partitioned island names."""
        return frozenset(self._isolated)

    # -- discovery instrumentation -------------------------------------------

    def visible_at(self, entity_id: EntityId) -> Optional[int]:
        """Simulation time at which ``entity_id``'s latest registration
        became fabric-wide visible; None while still spreading."""
        return self._visible_at.get(entity_id)

    def discovery_latency(self, entity_id: EntityId) -> Optional[int]:
        """``visible_at - registered_at`` of the latest registration."""
        visible = self._visible_at.get(entity_id)
        registered = self._registered_at.get(entity_id)
        if visible is None or registered is None:
            return None
        return visible - registered

    # -- message accounting ---------------------------------------------------

    def _count(self, node: str, messages: int = 1) -> None:
        self._node_messages[node] = self._node_messages.get(node, 0) + messages

    def message_counts(self) -> dict[str, int]:
        """Discovery/control messages handled per node — the per-node
        concentration the fabric experiment measures (O(K) at a hub,
        O(fanout) at aggregators, O(1) per gossip peer)."""
        return dict(self._node_messages)

    def messages_at(self, node: str) -> int:
        """Messages this directory accounted to ``node``."""
        return self._node_messages.get(node, 0)

    # -- channel health ----------------------------------------------------

    def register_channel(self, name: str, channel: StatsChannel) -> None:
        """Admit a coordination channel (raw or reliable) for platform-wide
        health reporting. ``channel`` must satisfy the
        :class:`~repro.platform.protocols.StatsChannel` protocol."""
        if name in self._channels:
            raise ValueError(f"channel {name!r} already registered")
        if not isinstance(channel, StatsChannel):
            raise TypeError(f"channel {name!r} does not expose stats()")
        self._channels[name] = channel
        self.tracer.emit("controller", "channel-registered", channel=name)

    def channel_health(self) -> dict[str, dict]:
        """Current counters of every registered coordination channel —
        the platform-wide view of delivery, loss, retransmission and
        dead-letter behaviour that scaling to many islands requires.
        Channels exposing ``dead_letters_by_entity()`` (the reliable
        layer) additionally report *which* entities' frames died, so a
        health consumer can react per target instead of reading one bare
        counter."""
        health: dict[str, dict] = {}
        for name, channel in self._channels.items():
            stats = dict(channel.stats())
            by_entity = getattr(channel, "dead_letters_by_entity", None)
            if callable(by_entity):
                stats["dead_letters_by_entity"] = by_entity()
            health[name] = stats
        return health

    # -- peer health ---------------------------------------------------------

    def register_health(self, name: str, source: HealthSource) -> None:
        """Admit a peer-health source (a :class:`~repro.faults.
        FailureDetector`, or anything satisfying
        :class:`~repro.platform.protocols.HealthSource`)."""
        if name in self._health_sources:
            raise ValueError(f"health source {name!r} already registered")
        if not isinstance(source, HealthSource):
            raise TypeError(f"health source {name!r} does not expose health()")
        self._health_sources[name] = source
        self.tracer.emit("controller", "health-registered", detector=name)

    def health(self) -> dict[str, dict]:
        """Peer-health snapshot of every registered failure detector:
        state, epochs, heartbeat counters and the transition timeline.
        Empty when the fault domain is unarmed."""
        return {name: source.health() for name, source in self._health_sources.items()}

    # -- actuation layer ----------------------------------------------------

    def knob_snapshot(self) -> dict[str, dict]:
        """Typed description of every knob registered platform-wide.

        Keys are stringified entity ids (``island/name``); values carry the
        knob kind, native unit, current value, bounds, step, trigger
        capability and active lease count — the reflective capability
        discovery that scaling coordination to many resource types needs.
        """
        snapshot: dict[str, dict] = {}
        for island in self._islands.values():
            registry = getattr(island, "knobs", None)
            if registry is not None:
                snapshot.update(registry.snapshot())
        return snapshot

    def actuation_audit(self) -> list:
        """Every island's actuation records merged into one platform-wide
        trail, ordered by (time, island, sequence) — who tuned what, when,
        the requested vs. clamped-applied value, and any rejection reason."""
        records = []
        for island in self._islands.values():
            registry = getattr(island, "knobs", None)
            if registry is not None:
                records.extend(registry.audit)
        records.sort(key=lambda r: (r.time, r.island, r.seq))
        return records

    def actuation_stats(self) -> dict[str, dict[str, int]]:
        """Per-island actuation counters (tunes, clamps, triggers,
        unsupported triggers), keyed by island name."""
        return {
            island.name: island.knobs.stats()
            for island in self._islands.values()
            if getattr(island, "knobs", None) is not None
        }

    # -- control-loop observatory -------------------------------------------

    def attach_observatory(self, collector: Observatory) -> None:
        """Admit the platform's control-loop observatory.

        ``collector`` must satisfy :class:`~repro.platform.protocols.
        Observatory` (the platform layer stays import-free of
        :mod:`repro.obs`); the testbed attaches its
        :class:`~repro.obs.ControlLoopCollector` here when tracing is
        enabled.
        """
        if not isinstance(collector, Observatory):
            raise TypeError("observatory does not expose report()")
        self._observatory = collector
        self.tracer.emit("controller", "observatory-attached")

    @property
    def observatory(self) -> Optional[Observatory]:
        """The attached control-loop collector, or None when untraced."""
        return self._observatory

    def control_loops(self) -> dict:
        """Control-loop latency introspection: counters plus per-entity and
        per-reason stage percentiles of every completed decision loop.
        Empty when no observatory is attached (tracing off)."""
        if self._observatory is None:
            return {}
        return self._observatory.report()

    def __repr__(self) -> str:
        return (
            f"<{self.__class__.__name__} islands={len(self._islands)} "
            f"entities={len(self._registered_at)}>"
        )


class CentralDirectory(DirectoryBase):
    """Registry of islands and entities behind one hub — the paper's
    global controller and the fabric experiment's audit baseline.

    Every registration and lookup is accounted to the hub (the first
    registered island, or an explicit ``hub``): the O(K) concentration a
    centralized control plane cannot escape. ``hop_latency`` models the
    one network hop a registration takes to reach the hub, reflected in
    :meth:`~DirectoryBase.visible_at` (zero by default, so the two-island
    prototype is bit-identical to the pre-directory controller).
    """

    def __init__(
        self,
        sim: Simulator,
        tracer: Optional[Tracer] = None,
        hub: Optional[str] = None,
        hop_latency: int = 0,
    ):
        super().__init__(sim, tracer=tracer)
        self._hub = hub
        self.hop_latency = hop_latency
        self._owner_of: dict[EntityId, str] = {}

    @property
    def hub(self) -> Optional[str]:
        """The hub node every directory message lands on."""
        return self._hub

    def _admit_island(self, island: Island) -> None:
        if self._hub is None:
            self._hub = island.name

    def _record_owner(self, island_name: str, entity_id: EntityId, moved: bool) -> None:
        self._owner_of[entity_id] = island_name
        if self._hub is not None:
            self._count(self._hub)
        self._visible_at[entity_id] = self.sim.now + self.hop_latency

    def owner_name(self, entity_id: EntityId) -> Optional[str]:
        return self._owner_of.get(entity_id)

    def lookup(self, entity_id: EntityId, frm: Optional[str] = None) -> Optional[str]:
        """One round-trip to the hub, wherever the query comes from."""
        if self._hub is not None:
            self._count(self._hub)
        return self._owner_of.get(entity_id)


@dataclass(frozen=True, slots=True)
class ClusterLoad:
    """One coalesced upward load report from an aggregator."""

    cluster: str
    mean: float
    peak: float
    reports: int
    stamped_at: int


class HierarchicalDirectory(DirectoryBase):
    """Cluster-local ownership tables at aggregators, entity->cluster at
    the root, load reports coalesced upward once per aggregation period.

    The topology's clusters decide where messages land: registrations
    and intra-cluster lookups cost the local aggregator one message,
    cross-cluster resolution adds one at the root and one at the target
    cluster's aggregator. Nothing ever concentrates more than
    O(cluster fanout) on a single node.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: FabricTopology,
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(sim, tracer=tracer)
        self.topology = topology
        self._cluster_tables: dict[str, dict[EntityId, str]] = {
            cluster.name: {} for cluster in topology.clusters
        }
        self._root_table: dict[EntityId, str] = {}
        self._pending_reports: dict[str, dict[str, float]] = {}
        self._cluster_loads: dict[str, ClusterLoad] = {}
        self.reports_received = 0
        self.reports_coalesced = 0
        self.summaries_sent = 0
        self._aggregate_task = PeriodicTask(
            sim, topology.aggregate_period, self._aggregate_tick,
            name="directory-aggregate",
        )

    def _cluster_name(self, island_name: str) -> str:
        return self.topology.cluster_of(island_name).name

    def _record_owner(self, island_name: str, entity_id: EntityId, moved: bool) -> None:
        cluster = self._cluster_name(island_name)
        if moved:
            # Scrub the old cluster's table: a move across clusters must
            # not leave a stale claim the old aggregator keeps serving.
            previous = self._root_table.get(entity_id)
            if previous is not None and previous != cluster:
                self._cluster_tables[previous].pop(entity_id, None)
        self._cluster_tables[cluster][entity_id] = island_name
        self._count(self.topology.aggregator_of(island_name))
        visible = self.sim.now + self.topology.link_latency
        if self._root_table.get(entity_id) != cluster:
            self._root_table[entity_id] = cluster
            self._count(self.topology.root)
            visible += self.topology.effective_uplink_latency
        self._visible_at[entity_id] = visible

    def owner_name(self, entity_id: EntityId) -> Optional[str]:
        cluster = self._root_table.get(entity_id)
        if cluster is None:
            return None
        return self._cluster_tables[cluster].get(entity_id)

    def lookup(self, entity_id: EntityId, frm: Optional[str] = None) -> Optional[str]:
        """Ask the local aggregator; escalate to the root (and the owning
        cluster's aggregator) only for cross-cluster entities."""
        origin = frm if frm is not None else self.topology.islands[0]
        aggregator = self.topology.aggregator_of(origin)
        self._count(aggregator)
        own_cluster = self._cluster_name(origin)
        owner = self._cluster_tables[own_cluster].get(entity_id)
        if owner is not None:
            return owner
        self._count(self.topology.root)
        cluster = self._root_table.get(entity_id)
        if cluster is None:
            return None
        owner = self._cluster_tables[cluster].get(entity_id)
        if cluster != own_cluster and owner is not None:
            self._count(self.topology.aggregator_of(owner))
        return owner

    # -- upward load coalescing ---------------------------------------------

    def report_load(self, island_name: str, value: float) -> None:
        """Accept one island's load figure at its aggregator. Reports
        accumulate per cluster and coalesce into a single upward summary
        per aggregation period — each raw report costs its aggregator one
        message (O(fanout) concentration), but only the coalesced summary
        costs the root."""
        cluster = self._cluster_name(island_name)
        self._pending_reports.setdefault(cluster, {})[island_name] = value
        self.reports_received += 1
        self._count(self.topology.aggregator_of(island_name))

    def _aggregate_tick(self) -> None:
        for cluster in sorted(self._pending_reports):
            reports = self._pending_reports[cluster]
            if not reports:
                continue
            values = list(reports.values())
            self._cluster_loads[cluster] = ClusterLoad(
                cluster=cluster,
                mean=sum(values) / len(values),
                peak=max(values),
                reports=len(values),
                stamped_at=self.sim.now,
            )
            self.reports_coalesced += len(values)
            self.summaries_sent += 1
            self._count(self.topology.root)
            reports.clear()

    def cluster_loads(self) -> dict[str, ClusterLoad]:
        """Latest coalesced per-cluster load summaries, as the root sees
        them."""
        return dict(self._cluster_loads)

    # -- downward fan-out ----------------------------------------------------

    def fan_tune(self, local_name: str, delta: int, reason: str = "fabric-fan") -> list:
        """Fan one Tune to every island owning ``local_name`` through the
        PR-3 knob registries: root -> aggregators (one message each) ->
        member islands. Returns the actuation records, in fabric order."""
        records = []
        for cluster in self.topology.clusters:
            table = self._cluster_tables[cluster.name]
            targets = [
                (entity, owner) for entity, owner in table.items()
                if entity.local_name == local_name
            ]
            if not targets:
                continue
            self._count(cluster.aggregator)
            for entity, owner in sorted(targets, key=lambda t: str(t[0])):
                island = self._islands.get(owner)
                if island is None or not island.has_entity(entity):
                    continue
                self._count(owner)
                records.append(island.apply_tune(entity, delta))
        return records


class GossipDirectory(DirectoryBase):
    """Epidemic dissemination of ownership and peer-health records.

    Every node keeps a full *view* (entity -> :class:`OwnershipRecord`,
    node -> :class:`PeerRecord`); an anti-entropy
    :class:`~repro.sim.PeriodicTask` has each live node push-pull merge
    with one deterministic random peer per round. Reconciliation is by
    ``(epoch, version)`` — higher wins — so discovery converges after
    partitions without a rendezvous point, and a rejoining node's
    pre-partition records lose to anything the fabric learned meanwhile.

    An isolated node skips rounds entirely (it can neither infect nor be
    infected) but keeps recording its own facts; :meth:`~DirectoryBase.
    heal` bumps its epoch (the PR-5 recovery idiom) and re-injects its
    records into the next round's spread.
    """

    _defers_when_isolated = False

    def __init__(
        self,
        sim: Simulator,
        tracer: Optional[Tracer] = None,
        period: Optional[int] = None,
        rng: Optional[RandomStream] = None,
        seed: int = 1,
    ):
        super().__init__(sim, tracer=tracer)
        self.period = period if period is not None else ms(50)
        self.rng = rng if rng is not None else RandomStreams(seed).stream(
            "gossip-directory"
        )
        self._views: dict[str, dict[EntityId, OwnershipRecord]] = {}
        self._peer_views: dict[str, dict[str, PeerRecord]] = {}
        self._authoritative: dict[EntityId, OwnershipRecord] = {}
        self._node_epochs: dict[str, int] = {}
        self._heartbeats: dict[str, int] = {}
        #: entity -> nodes the latest record has not reached yet.
        self._spreading: dict[EntityId, set[str]] = {}
        self.rounds = 0
        self.exchanges = 0
        self._gossip_task = PeriodicTask(
            sim, self.period, self._gossip_round, name="directory-gossip"
        )

    def _admit_island(self, island: Island) -> None:
        self._views[island.name] = {}
        self._peer_views[island.name] = {}
        self._node_epochs[island.name] = 0
        self._heartbeats[island.name] = 0

    def _record_owner(self, island_name: str, entity_id: EntityId, moved: bool) -> None:
        previous = self._authoritative.get(entity_id)
        if previous is None:
            epoch, version = 0, 0
        elif moved:
            epoch, version = previous.epoch + 1, previous.version + 1
        else:
            epoch, version = previous.epoch, previous.version + 1
        record = OwnershipRecord(
            entity=entity_id, owner=island_name, epoch=epoch, version=version,
            stamped_at=self.sim.now,
        )
        self._authoritative[entity_id] = record
        # The fact is born in the owner's own view and spreads from there.
        self._views.setdefault(island_name, {})[entity_id] = record
        self._count(island_name)
        remaining = {node for node in self._views if node != island_name}
        if remaining:
            self._spreading[entity_id] = remaining
            self._visible_at.pop(entity_id, None)
        else:
            self._spreading.pop(entity_id, None)
            self._visible_at[entity_id] = self.sim.now

    def owner_name(self, entity_id: EntityId) -> Optional[str]:
        record = self._authoritative.get(entity_id)
        return record.owner if record is not None else None

    def lookup(self, entity_id: EntityId, frm: Optional[str] = None) -> Optional[str]:
        """A purely local read of ``frm``'s view — one message at the
        reading node, nowhere else. May be stale or None before the
        epidemic reaches that node: that is the contract."""
        if not self._views:
            return None
        node = frm if frm in self._views else next(iter(self._views))
        self._count(node)
        record = self._views[node].get(entity_id)
        return record.owner if record is not None else None

    # -- the epidemic --------------------------------------------------------

    def _gossip_round(self) -> None:
        nodes = sorted(self._views)
        live = [node for node in nodes if node not in self._isolated]
        self.rounds += 1
        for node in live:
            # Refresh the node's own liveness record, then infect a peer.
            self._heartbeats[node] += 1
            self._peer_views[node][node] = PeerRecord(
                node=node, epoch=self._node_epochs[node],
                heartbeat=self._heartbeats[node], stamped_at=self.sim.now,
            )
            peers = [peer for peer in live if peer != node]
            if not peers:
                continue
            peer = peers[self.rng.randrange(len(peers))]
            self._exchange(node, peer)

    def _exchange(self, a: str, b: str) -> None:
        """Push-pull anti-entropy between two nodes: both end up with the
        union of their views, newer ``(epoch, version)`` stamps winning.
        Costs two messages at each end (request + response)."""
        self.exchanges += 1
        self._count(a, 2)
        self._count(b, 2)
        for entity, record in list(self._views[a].items()):
            self._offer(b, entity, record)
        for entity, record in list(self._views[b].items()):
            self._offer(a, entity, record)
        for view in (self._peer_views[a], self._peer_views[b]):
            for node, record in list(view.items()):
                for other in (self._peer_views[a], self._peer_views[b]):
                    existing = other.get(node)
                    if existing is None or record.stamp > existing.stamp:
                        other[node] = record

    def _offer(self, node: str, entity: EntityId, record: OwnershipRecord) -> None:
        existing = self._views[node].get(entity)
        if existing is not None and existing.stamp >= record.stamp:
            return
        self._views[node][entity] = record
        if record is self._authoritative.get(entity):
            spreading = self._spreading.get(entity)
            if spreading is not None:
                spreading.discard(node)
                if not spreading:
                    del self._spreading[entity]
                    self._visible_at[entity] = self.sim.now
                    if self.tracer.wants("discovery-converged"):
                        self.tracer.emit(
                            "controller", "discovery-converged",
                            entity=str(entity),
                            latency=self.sim.now - self._registered_at[entity],
                        )

    def _on_heal(self, island_name: str) -> None:
        # The PR-5 rejoin idiom: a healed node bumps its epoch so its
        # fresh liveness claims dominate anything stamped pre-partition.
        if island_name in self._node_epochs:
            self._node_epochs[island_name] += 1

    # -- distributed introspection -------------------------------------------

    def view(self, node: str) -> dict[EntityId, str]:
        """Node-local ownership belief (entity -> island name)."""
        return {e: r.owner for e, r in self._views[node].items()}

    def peer_view(self, node: str) -> dict[str, PeerRecord]:
        """Node-local liveness beliefs (gossiped peer records)."""
        return dict(self._peer_views[node])

    def is_converged(self) -> bool:
        """True when every node's view agrees with the authoritative
        record set (no record still spreading)."""
        return not self._spreading


#: Directory flavours :func:`build_directory` knows how to construct.
DIRECTORY_KINDS = ("central", "hierarchical", "gossip")


def build_directory(
    kind: str,
    sim: Simulator,
    *,
    topology: Optional[FabricTopology] = None,
    tracer: Optional[Tracer] = None,
    rng: Optional[RandomStream] = None,
    seed: int = 1,
) -> DirectoryBase:
    """Construct a directory by name — the one switch a testbed or
    experiment arm flips to change the control plane's shape."""
    if kind == "central":
        hub = topology.root if topology is not None else None
        hop = topology.link_latency if topology is not None else 0
        return CentralDirectory(sim, tracer=tracer, hub=hub, hop_latency=hop)
    if kind == "hierarchical":
        if topology is None:
            raise ValueError("a hierarchical directory needs a FabricTopology")
        return HierarchicalDirectory(sim, topology, tracer=tracer)
    if kind == "gossip":
        period = topology.gossip_period if topology is not None else None
        return GossipDirectory(sim, tracer=tracer, period=period, rng=rng, seed=seed)
    raise ValueError(f"unknown directory kind {kind!r}; expected one of {DIRECTORY_KINDS}")
