"""Typed tunable knobs, lease-based triggers, and the actuation audit.

The paper's §3.3 argues that Tune and Trigger are *standard* mechanisms
translated into each island's *native* knobs. This module is that
translation layer made first-class: instead of per-island ``isinstance``
chains, every coordination entity registers a typed :class:`Knob` — an
apply/read callback pair with a native unit, bounds, and (optionally) a
trigger capability. :class:`KnobRegistry` dispatches Tunes and Triggers
over the registered knobs, clamps requests into bounds, turns Triggers
into stackable refcounted **leases** with deterministic expiry, and keeps
a platform-auditable record of every actuation (who tuned what, when,
requested vs. clamped-applied value, rejection reason).

Design rules:

* A Tune is always relative: ``delta`` coordination units scale by the
  knob's ``step`` into native units and move the knob from its current
  value, clamped into ``[minimum, maximum]``. The ``apply`` callback may
  clamp further (e.g. a balloon bounded by free physical memory) and
  returns the value that actually took effect.
* A Trigger is either a **pulse** (fire-and-forget, e.g. a Xen runqueue
  boost) or a **lease**: the first acquisition captures the knob's
  original value and applies ``boost``; nested acquisitions stack
  (``boost`` applied once more) instead of capturing the boosted value as
  original — the bug class this replaces; each release peels one level,
  and the last release restores the original exactly.
* Every actuation appends an :class:`ActuationRecord` to the registry's
  audit trail and emits a trace record, so policies can discover
  capabilities via snapshots and experiments can attribute every scheduler
  change to a coordination decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim import Simulator, Tracer
from .identity import EntityId

#: Trace kinds emitted by the registry (source = the island name).
ACTUATION_TRACE_KINDS = (
    "tune-applied",
    "tune-clamped",
    "tune-rejected",
    "trigger-applied",
    "trigger-released",
    "unsupported-trigger",
    "baseline-reverted",
    "lease-revert-deferred",
    "actuation-failed",
)


class KnobError(Exception):
    """Base class for actuation-layer errors."""


class UnknownKnobError(KnobError, KeyError):
    """The entity is registered but exposes no knob."""


class UnsupportedTriggerError(KnobError, TypeError):
    """The entity's knob has no trigger capability (e.g. ``mem:<vm>``).

    Subclasses :class:`TypeError` for continuity with the pre-registry
    translation layer, which raised ``TypeError`` from type sniffing.
    """


@dataclass(frozen=True, slots=True)
class TriggerSpec:
    """How a knob translates the Trigger mechanism.

    Exactly one flavour is set:

    * ``pulse`` — a one-shot native action (runqueue boost, runlist jump);
      nothing to restore, so no lease is taken.
    * ``boost`` + ``hold`` — a lease: ``boost(value)`` computes the next
      boost level from the current one, held for ``hold`` nanoseconds and
      restored (one level per expiry) through the knob's ``apply``.
    """

    pulse: Optional[Callable[[], None]] = None
    boost: Optional[Callable[[float], float]] = None
    hold: int = 0

    def __post_init__(self) -> None:
        if (self.pulse is None) == (self.boost is None):
            raise ValueError("exactly one of pulse/boost must be set")
        if self.boost is not None and self.hold <= 0:
            raise ValueError("a boost lease needs a positive hold time")


@dataclass(slots=True)
class Knob:
    """One entity's typed native control knob.

    ``apply`` sets an absolute native value and returns what actually took
    effect (it may clamp beyond the static bounds); ``read`` reports the
    current native value. ``step`` scales a Tune's coordination-unit delta
    into native units (e.g. 1000 for a µs-delta onto a ns-interval knob).
    """

    kind: str
    unit: str
    read: Callable[[], float]
    apply: Callable[[float], float]
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    step: float = 1
    trigger: Optional[TriggerSpec] = None

    def clamp(self, value: float) -> float:
        """``value`` forced into the knob's static bounds."""
        if self.minimum is not None and value < self.minimum:
            value = self.minimum
        if self.maximum is not None and value > self.maximum:
            value = self.maximum
        return value

    @property
    def supports_trigger(self) -> bool:
        return self.trigger is not None


@dataclass(frozen=True, slots=True)
class ActuationRecord:
    """One audited actuation: the who/what/when of a knob change."""

    seq: int
    time: int
    island: str
    entity: str
    kind: str
    op: str  #: ``tune`` | ``trigger`` | ``trigger-release`` | ``revert``
    requested_delta: Optional[float]
    requested_value: Optional[float]
    previous_value: Optional[float]
    applied_value: Optional[float]
    #: ``applied`` | ``clamped`` | ``rejected`` | ``failed``
    #: (fault-injected) | ``deferred`` (revert blocked by a held lease).
    outcome: str
    reason: str = ""
    #: Causal span of the coordination decision this actuation realises
    #: (a :class:`~repro.obs.SpanContext`, typed loosely so the actuation
    #: layer stays import-free of the observability package). None for
    #: local/untraced actuations — the zero-cost default.
    span: Optional[Any] = None

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form (stable keys, for reports and JSON dumps)."""
        return {
            "seq": self.seq,
            "time": self.time,
            "island": self.island,
            "entity": self.entity,
            "kind": self.kind,
            "op": self.op,
            "requested_delta": self.requested_delta,
            "requested_value": self.requested_value,
            "previous_value": self.previous_value,
            "applied_value": self.applied_value,
            "outcome": self.outcome,
            "reason": self.reason,
            "trace_id": self.span.trace_id if self.span is not None else None,
            "span_id": self.span.span_id if self.span is not None else None,
        }


class _LeaseState:
    """Refcounted boost state of one lease-capable knob."""

    __slots__ = ("original", "level", "spans")

    def __init__(self, original: float):
        self.original = original
        self.level = 0  #: currently-held (unexpired) boost acquisitions
        #: Acquiring spans, one per held level (None entries when tracing
        #: is off); popped FIFO as levels expire — expiry timers fire in
        #: acquisition order, so each restore is attributed to the decision
        #: whose hold just ran out.
        self.spans: list = []


class KnobRegistry:
    """Typed actuator table of one island: dispatch, clamp, lease, audit."""

    def __init__(
        self,
        sim: Simulator,
        island_name: str,
        tracer: Optional[Tracer] = None,
        audit_limit: int = 100_000,
    ):
        self.sim = sim
        self.island_name = island_name
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._knobs: dict[EntityId, Knob] = {}
        self._leases: dict[EntityId, _LeaseState] = {}
        #: Most recent audit record per entity (race-guard lookups stay
        #: O(1) regardless of audit length or trimming).
        self._last: dict[EntityId, ActuationRecord] = {}
        #: Monotonic per-registry actuation counter (audit determinism).
        self._seq = 0
        self.audit: list[ActuationRecord] = []
        self.audit_limit = audit_limit
        self.tunes_applied = 0
        self.tunes_clamped = 0
        self.triggers_applied = 0
        self.unsupported_triggers = 0
        self.reverts_applied = 0
        self.actuations_failed = 0
        #: Fault-injection gate: ``gate(entity_id, op) -> bool`` where True
        #: fails the actuation (audited + counted, never raised). None —
        #: the default — costs one attribute test per actuation; installed
        #: only by the :class:`~repro.faults.FaultInjector`.
        self.fault_gate: Optional[Callable[[EntityId, str], bool]] = None

    # -- registration / introspection --------------------------------------

    def register(self, entity_id: EntityId, knob: Knob) -> Knob:
        """Expose ``entity_id``'s native knob; one knob per entity."""
        if entity_id in self._knobs:
            raise ValueError(f"knob for {entity_id} already registered")
        self._knobs[entity_id] = knob
        return knob

    def has(self, entity_id: EntityId) -> bool:
        return entity_id in self._knobs

    def get(self, entity_id: EntityId) -> Knob:
        """The knob registered for ``entity_id``; UnknownKnobError if none."""
        try:
            return self._knobs[entity_id]
        except KeyError:
            raise UnknownKnobError(
                f"no knob registered for {entity_id} on island {self.island_name!r}"
            ) from None

    def describe(self, entity_id: EntityId) -> dict[str, Any]:
        """Introspectable description of one knob (capability discovery)."""
        knob = self.get(entity_id)
        lease = self._leases.get(entity_id)
        return {
            "island": self.island_name,
            "kind": knob.kind,
            "unit": knob.unit,
            "value": knob.read(),
            "minimum": knob.minimum,
            "maximum": knob.maximum,
            "step": knob.step,
            "supports_trigger": knob.supports_trigger,
            "active_leases": lease.level if lease is not None else 0,
        }

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All knobs' descriptions, keyed by stringified entity id."""
        return {str(eid): self.describe(eid) for eid in self._knobs}

    # -- audit --------------------------------------------------------------

    def _record(
        self,
        entity_id: EntityId,
        knob_kind: str,
        op: str,
        outcome: str,
        requested_delta: Optional[float] = None,
        requested_value: Optional[float] = None,
        previous_value: Optional[float] = None,
        applied_value: Optional[float] = None,
        reason: str = "",
        span: Optional[Any] = None,
    ) -> ActuationRecord:
        record = ActuationRecord(
            seq=self._seq,
            time=self.sim.now,
            island=self.island_name,
            entity=str(entity_id),
            kind=knob_kind,
            op=op,
            requested_delta=requested_delta,
            requested_value=requested_value,
            previous_value=previous_value,
            applied_value=applied_value,
            outcome=outcome,
            reason=reason,
            span=span,
        )
        self._seq += 1
        self.audit.append(record)
        self._last[entity_id] = record
        if len(self.audit) > self.audit_limit:
            del self.audit[: len(self.audit) - self.audit_limit]
        return record

    def last_actuation(self, entity_id: EntityId) -> Optional[ActuationRecord]:
        """The most recent audit record touching ``entity_id`` (None if
        the entity was never actuated). Governors use this to detect a
        same-instant actuation by a racing peer before stepping a shared
        knob like the DVFS ladder."""
        return self._last.get(entity_id)

    def _emit_span_applied(self, span: Any, record: ActuationRecord) -> None:
        """Close a causal span at its actuation (t5 of the control loop).

        ``merged_from`` carries the span ids this actuation additionally
        realised through Tune coalescing, so the collector can complete
        absorbed loops from the surviving span's apply event alone.
        """
        self.tracer.emit(
            self.island_name, "span-applied", trace=span.trace_id,
            span=span.span_id, entity=record.entity, op=record.op,
            outcome=record.outcome, merged_from=span.merged_from,
        )

    def _fault_reject(
        self,
        entity_id: EntityId,
        knob: Knob,
        op: str,
        requested_delta: Optional[float] = None,
        span: Optional[Any] = None,
    ) -> ActuationRecord:
        """Audit a fault-injected actuation failure (never raises: the
        knob stays where it was, the caller keeps running, the audit and
        counters say what happened)."""
        previous = knob.read()
        self.actuations_failed += 1
        record = self._record(
            entity_id, knob.kind, op, "failed",
            requested_delta=requested_delta, previous_value=previous,
            applied_value=previous, reason="fault-injected", span=span,
        )
        if self.tracer.wants("actuation-failed"):
            self.tracer.emit(
                self.island_name, "actuation-failed", entity=str(entity_id),
                knob=knob.kind, op=op,
            )
        if span is not None and self.tracer.wants("span-applied"):
            self._emit_span_applied(span, record)
        return record

    # -- the Tune mechanism --------------------------------------------------

    def tune(
        self, entity_id: EntityId, delta: float, span: Optional[Any] = None
    ) -> ActuationRecord:
        """Apply a relative adjustment through the entity's knob.

        ``delta`` is in coordination units; the knob's ``step`` scales it
        to native units. The target is clamped into the knob's bounds and
        handed to ``apply``, whose return value (possibly clamped further)
        is what the audit reports as applied. ``span`` is the causal span
        of the remote decision, stamped onto the audit record.
        """
        knob = self.get(entity_id)
        if self.fault_gate is not None and self.fault_gate(entity_id, "tune"):
            return self._fault_reject(entity_id, knob, "tune",
                                      requested_delta=delta, span=span)
        previous = knob.read()
        if delta == 0:
            # Zero-delta Tunes are audited no-ops: nothing is applied, so
            # native side effects (hypercall cost, rebalances) are skipped.
            record = self._record(
                entity_id, knob.kind, "tune", "applied",
                requested_delta=0, requested_value=previous,
                previous_value=previous, applied_value=previous,
                reason="zero-delta", span=span,
            )
            if self.tracer.wants("tune-applied"):
                self.tracer.emit(
                    self.island_name, "tune-applied", entity=str(entity_id),
                    knob=knob.kind, delta=0, applied=previous,
                )
            if span is not None and self.tracer.wants("span-applied"):
                self._emit_span_applied(span, record)
            self.tunes_applied += 1
            return record
        requested = previous + delta * knob.step
        target = knob.clamp(requested)
        applied = knob.apply(target)
        if applied is None:  # tolerate apply callbacks with no return
            applied = knob.read()
        lease = self._leases.get(entity_id)
        if lease is not None and lease.level > 0:
            # A Tune landing while a boost lease is held must survive the
            # lease: rebase the captured original (and thus every stacked
            # re-derivation at release time) by the same delta, clamped
            # independently. Without this, expiry restored the pre-lease
            # value and silently undid the Tune — the stale-restore bug.
            lease.original = knob.clamp(lease.original + delta * knob.step)
        clamped = applied != requested
        outcome = "clamped" if clamped else "applied"
        record = self._record(
            entity_id, knob.kind, "tune", outcome,
            requested_delta=delta, requested_value=requested,
            previous_value=previous, applied_value=applied,
            reason="bounds" if clamped else "", span=span,
        )
        self.tunes_applied += 1
        if clamped:
            self.tunes_clamped += 1
        if self.tracer.wants("tune-applied"):
            self.tracer.emit(
                self.island_name, "tune-applied", entity=str(entity_id),
                knob=knob.kind, delta=delta, requested=requested, applied=applied,
            )
        if clamped and self.tracer.wants("tune-clamped"):
            self.tracer.emit(
                self.island_name, "tune-clamped", entity=str(entity_id),
                knob=knob.kind, requested=requested, applied=applied,
            )
        if span is not None and self.tracer.wants("span-applied"):
            self._emit_span_applied(span, record)
        return record

    # -- the Trigger mechanism (leases) ---------------------------------------

    def trigger(
        self, entity_id: EntityId, span: Optional[Any] = None
    ) -> ActuationRecord:
        """Fire the entity's trigger: a pulse, or one more lease level.

        Raises :class:`UnsupportedTriggerError` when the knob exists but
        has no trigger capability — callers (the coordination agent) count
        that and keep the simulation running. ``span`` is the causal span
        of the remote decision; for lease triggers it is held with the
        lease level so the eventual restore is attributed back to it.
        """
        knob = self.get(entity_id)
        if self.fault_gate is not None and self.fault_gate(entity_id, "trigger"):
            return self._fault_reject(entity_id, knob, "trigger", span=span)
        spec = knob.trigger
        if spec is None:
            self.unsupported_triggers += 1
            record = self._record(
                entity_id, knob.kind, "trigger", "rejected",
                reason="knob has no trigger capability", span=span,
            )
            if self.tracer.wants("unsupported-trigger"):
                self.tracer.emit(
                    self.island_name, "unsupported-trigger",
                    entity=str(entity_id), knob=knob.kind,
                )
            if span is not None and self.tracer.wants("span-applied"):
                self._emit_span_applied(span, record)
            raise UnsupportedTriggerError(
                f"{entity_id} ({knob.kind}) on island {self.island_name!r} "
                "does not support Trigger"
            )
        if spec.pulse is not None:
            spec.pulse()
            record = self._record(entity_id, knob.kind, "trigger", "applied",
                                  reason="pulse", span=span)
            self.triggers_applied += 1
            if self.tracer.wants("trigger-applied"):
                self.tracer.emit(
                    self.island_name, "trigger-applied", entity=str(entity_id),
                    knob=knob.kind, flavour="pulse",
                )
            if span is not None and self.tracer.wants("span-applied"):
                self._emit_span_applied(span, record)
            return record
        # Lease flavour: stack one boost level with deterministic expiry.
        lease = self._leases.get(entity_id)
        if lease is None or lease.level == 0:
            lease = _LeaseState(original=knob.read())
            self._leases[entity_id] = lease
        previous = knob.read()
        lease.level += 1
        lease.spans.append(span)
        boosted = spec.boost(previous)
        applied = knob.apply(boosted)
        if applied is None:
            applied = knob.read()
        record = self._record(
            entity_id, knob.kind, "trigger", "applied",
            previous_value=previous, requested_value=boosted,
            applied_value=applied, reason=f"lease level {lease.level}",
            span=span,
        )
        self.triggers_applied += 1
        if self.tracer.wants("trigger-applied"):
            self.tracer.emit(
                self.island_name, "trigger-applied", entity=str(entity_id),
                knob=knob.kind, flavour="lease", level=lease.level,
            )
        if span is not None and self.tracer.wants("span-applied"):
            self._emit_span_applied(span, record)
        self.sim.call_in(spec.hold, lambda: self._release(entity_id, knob))
        return record

    def _release(self, entity_id: EntityId, knob: Knob) -> None:
        """Expire one lease level; the last release restores the original."""
        lease = self._leases.get(entity_id)
        if lease is None or lease.level == 0:
            return  # released out of band (e.g. knob retuned mid-lease)
        lease.level -= 1
        # Expiry timers fire in acquisition order: the oldest held span is
        # the one whose hold just ran out.
        span = lease.spans.pop(0) if lease.spans else None
        previous = knob.read()
        if lease.level == 0:
            target = lease.original
        else:
            # Recompute the remaining boost from the true original so
            # stacked releases peel back to exactly the pre-trigger value.
            target = lease.original
            for _ in range(lease.level):
                target = knob.trigger.boost(target)
        applied = knob.apply(target)
        if applied is None:
            applied = knob.read()
        self._record(
            entity_id, knob.kind, "trigger-release", "applied",
            previous_value=previous, requested_value=target,
            applied_value=applied, reason=f"lease level {lease.level}",
            span=span,
        )
        if self.tracer.wants("trigger-released"):
            self.tracer.emit(
                self.island_name, "trigger-released", entity=str(entity_id),
                knob=knob.kind, level=lease.level,
            )
        if span is not None and self.tracer.wants("span-restored"):
            self.tracer.emit(
                self.island_name, "span-restored", trace=span.trace_id,
                span=span.span_id, entity=str(entity_id), level=lease.level,
            )

    def active_leases(self, entity_id: EntityId) -> int:
        """Currently-held boost levels on one entity (0 when idle)."""
        lease = self._leases.get(entity_id)
        return lease.level if lease is not None else 0

    def outstanding_leases(self) -> int:
        """Total held boost levels across every entity. Zero after every
        hold has expired — the chaos experiment's stuck-lease gauge."""
        return sum(lease.level for lease in self._leases.values())

    # -- degraded-mode fallback -----------------------------------------------

    def revert(
        self,
        entity_id: EntityId,
        value: float,
        reason: str = "",
        span: Optional[Any] = None,
    ) -> ActuationRecord:
        """Restore a knob to a declared baseline ``value`` (absolute set).

        The degradation contract of the fault domain: when a peer goes
        DOWN — or an epoch boundary is crossed — every entity it steered
        snaps back to its declared local baseline. Entities with an
        active boost lease are *deferred*, not forced: the lease's TTL
        expiry restores the true pre-trigger original (which is the
        baseline), and forcing the value now would corrupt the lease's
        captured original. A knob already at baseline is audited but not
        re-applied, so repeated reverts have no native side effects.
        """
        knob = self.get(entity_id)
        previous = knob.read()
        lease = self._leases.get(entity_id)
        if lease is not None and lease.level > 0:
            record = self._record(
                entity_id, knob.kind, "revert", "deferred",
                requested_value=value, previous_value=previous,
                applied_value=previous,
                reason="lease held; TTL expiry restores the original",
                span=span,
            )
            if self.tracer.wants("lease-revert-deferred"):
                self.tracer.emit(
                    self.island_name, "lease-revert-deferred",
                    entity=str(entity_id), level=lease.level,
                )
            return record
        target = knob.clamp(value)
        if target == previous:
            applied = previous
        else:
            applied = knob.apply(target)
            if applied is None:
                applied = knob.read()
            self.reverts_applied += 1
        record = self._record(
            entity_id, knob.kind, "revert", "applied",
            requested_value=value, previous_value=previous,
            applied_value=applied, reason=reason, span=span,
        )
        if target != previous and self.tracer.wants("baseline-reverted"):
            self.tracer.emit(
                self.island_name, "baseline-reverted", entity=str(entity_id),
                knob=knob.kind, previous=previous, baseline=applied,
            )
        return record

    def stats(self) -> dict[str, int]:
        """Actuation counters (mirrors channel ``stats()`` idiom)."""
        return {
            "knobs": len(self._knobs),
            "tunes_applied": self.tunes_applied,
            "tunes_clamped": self.tunes_clamped,
            "triggers_applied": self.triggers_applied,
            "unsupported_triggers": self.unsupported_triggers,
            "reverts_applied": self.reverts_applied,
            "actuations_failed": self.actuations_failed,
        }

    def __len__(self) -> int:
        return len(self._knobs)

    def __repr__(self) -> str:
        return (
            f"<KnobRegistry {self.island_name!r} knobs={len(self._knobs)} "
            f"tunes={self.tunes_applied} triggers={self.triggers_applied}>"
        )


# -- common knob constructors ---------------------------------------------


def weight_knob(
    kind: str,
    unit: str,
    read: Callable[[], float],
    apply: Callable[[float], float],
    minimum: float = 1,
    maximum: Optional[float] = None,
    trigger: Optional[TriggerSpec] = None,
) -> Knob:
    """A share/weight-style knob (floor of 1 unless stated otherwise)."""
    return Knob(
        kind=kind, unit=unit, read=read, apply=apply,
        minimum=minimum, maximum=maximum, trigger=trigger,
    )
