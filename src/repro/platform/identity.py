"""Platform-wide entity naming.

The paper's coordination messages refer to remote entities ("VM 2", "flow
queue of Dom1") by identifier. An :class:`EntityId` pairs an island name
with an island-local name so identifiers are unambiguous platform-wide while
remaining cheap hashable values.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class EntityId:
    """Globally unique name of a schedulable entity (VM, flow queue, ...)."""

    island: str
    local_name: str

    def __str__(self) -> str:
        return f"{self.island}/{self.local_name}"


def vm_id(name: str, island: str = "x86") -> EntityId:
    """Identifier for a virtual machine on the x86 island."""
    return EntityId(island=island, local_name=name)


def flow_id(name: str, island: str = "ixp") -> EntityId:
    """Identifier for a classified flow queue on the IXP island."""
    return EntityId(island=island, local_name=name)
