"""Typed duck-type contracts of the control plane's collaborators.

The directory layer (and the legacy :class:`~repro.platform.
GlobalController` facade) admits three kinds of outside objects: health-
reporting coordination channels, peer-health sources (failure
detectors), and the control-loop observatory. They used to be typed as
bare ``object`` with hand-rolled ``callable(getattr(...))`` probes;
these :class:`~typing.Protocol`\\ s name the actual contracts, so
directory implementations and tests can check them with ``isinstance``
and new fabrics get a readable error instead of an attribute probe.

Everything here is structural: no class in the repo inherits from these,
they only have to *shape-match* (``@runtime_checkable`` checks method
presence, not signatures — the docstrings carry the semantic contract).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class StatsChannel(Protocol):
    """A coordination channel that reports delivery counters.

    Satisfied by the raw :class:`~repro.interconnect.CoordinationChannel`
    and the :class:`~repro.interconnect.ReliableChannel` wrapper. The
    reliable layer *additionally* exposes ``dead_letters_by_entity()``,
    which directories surface opportunistically (see
    :meth:`~repro.platform.directory.DirectoryBase.channel_health`).
    """

    def stats(self) -> dict:
        """Current delivery/loss/retransmission counters."""
        ...


@runtime_checkable
class HealthSource(Protocol):
    """A peer-health source: a :class:`~repro.faults.FailureDetector` or
    anything else that can snapshot a peer's liveness state."""

    def health(self) -> dict:
        """State, epochs, heartbeat counters and the transition timeline."""
        ...


@runtime_checkable
class Observatory(Protocol):
    """The control-loop observatory (a
    :class:`~repro.obs.ControlLoopCollector` when tracing is armed)."""

    def report(self) -> dict:
        """Per-loop latency breakdowns and counters."""
        ...
