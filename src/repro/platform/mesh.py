"""Multi-island coordination meshes.

The paper's prototype has two islands and one channel; its future work
(§5) asks about "the scalability of such mechanisms to large-scale
multicore platforms, part of which involve the use of distributed
coordination algorithms across multiple island resource managers". A
:class:`CoordinationMesh` wires any number of islands with point-to-point
channels (each pair gets its own mailbox, as tiled hardware would), and
exposes per-link agents so both centralized (star) and distributed
(neighbour-gossip) coordination algorithms can be built on the same
Tune/Trigger vocabulary.
"""

from __future__ import annotations

from typing import Optional

from ..coordination import CoordinationAgent
from ..interconnect import CoordinationChannel
from ..sim import Simulator, Tracer
from ..x86.vm import VirtualMachine
from .island import Island


class CoordinationMesh:
    """Point-to-point coordination links among registered islands."""

    def __init__(self, sim: Simulator, latency: int, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.latency = latency
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._islands: dict[str, Island] = {}
        self._handler_vms: dict[str, Optional[VirtualMachine]] = {}
        #: (from, to) -> agent whose sends travel from -> to and whose
        #: receive side applies messages at `from`'s island... see link().
        self._agents: dict[tuple[str, str], CoordinationAgent] = {}

    def add_island(self, island: Island, handler_vm: Optional[VirtualMachine] = None) -> None:
        """Register an island (``handler_vm`` pays for message handling)."""
        if island.name in self._islands:
            raise ValueError(f"island {island.name!r} already in mesh")
        self._islands[island.name] = island
        self._handler_vms[island.name] = handler_vm

    def islands(self) -> list[Island]:
        """All islands, in registration order."""
        return list(self._islands.values())

    def connect(self, name_a: str, name_b: str) -> None:
        """Create the (bidirectional) link between two islands."""
        if name_a == name_b:
            raise ValueError("cannot connect an island to itself")
        if (name_a, name_b) in self._agents:
            raise ValueError(f"link {name_a!r}<->{name_b!r} already exists")
        channel = CoordinationChannel(
            self.sim, latency=self.latency, a_name=name_a, b_name=name_b,
            tracer=self.tracer,
        )
        agent_a = CoordinationAgent(
            self.sim,
            self._islands[name_a],
            channel.endpoint(name_a),
            handler_vm=self._handler_vms[name_a],
            tracer=self.tracer,
        )
        agent_b = CoordinationAgent(
            self.sim,
            self._islands[name_b],
            channel.endpoint(name_b),
            handler_vm=self._handler_vms[name_b],
            tracer=self.tracer,
        )
        self._agents[(name_a, name_b)] = agent_a
        self._agents[(name_b, name_a)] = agent_b

    def connect_star(self, hub: str) -> None:
        """Link every island to ``hub`` (centralized coordinator layout)."""
        for name in self._islands:
            if name != hub and (hub, name) not in self._agents:
                self.connect(hub, name)

    def connect_ring(self) -> None:
        """Link islands in a ring (distributed neighbour-gossip layout)."""
        names = list(self._islands)
        count = len(names)
        if count < 2:
            raise ValueError("a ring needs at least two islands")
        for i, name in enumerate(names):
            neighbor = names[(i + 1) % count]
            if (name, neighbor) not in self._agents:
                self.connect(name, neighbor)

    def agent(self, from_island: str, to_island: str) -> CoordinationAgent:
        """The agent at ``from_island`` on its link toward ``to_island``.

        Its ``send_*`` methods deliver to ``to_island``; its receive side
        applies messages arriving *from* ``to_island``.
        """
        return self._agents[(from_island, to_island)]

    def neighbors(self, name: str) -> list[str]:
        """Islands this one has links to."""
        return [to for (frm, to) in self._agents if frm == name]

    def messages_handled_at(self, name: str) -> int:
        """Tunes+Triggers applied at an island across all its links."""
        total = 0
        for (frm, _to), agent in self._agents.items():
            if frm == name:
                total += agent.tunes_applied + agent.triggers_applied
        return total
