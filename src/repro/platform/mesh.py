"""Multi-island coordination meshes.

The paper's prototype has two islands and one channel; its future work
(§5) asks about "the scalability of such mechanisms to large-scale
multicore platforms, part of which involve the use of distributed
coordination algorithms across multiple island resource managers". A
:class:`CoordinationMesh` wires any number of islands with point-to-point
channels (each pair gets its own mailbox, as tiled hardware would), and
exposes per-link agents so both centralized (star) and distributed
(neighbour-gossip) coordination algorithms can be built on the same
Tune/Trigger vocabulary.

Since the fabric refactor, a mesh is also the transport of a declared
:class:`~repro.platform.fabric.FabricTopology`: :meth:`apply_topology`
wires the spec's links at their declared latencies, :meth:`attach_directory`
binds every agent to a :class:`~repro.platform.directory.Directory` so
messages for non-local entities relay hop by hop along
:meth:`~repro.platform.fabric.FabricTopology.next_hop` routes, and the
PR-5 fault domain extends per link: :meth:`arm_fault_domain` hangs a
failure detector on every agent, :meth:`inject_link_fault` replays a
:class:`~repro.faults.FaultPlan` against one specific link.
"""

from __future__ import annotations

from typing import Optional

from ..coordination import CoordinationAgent
from ..interconnect import CoordinationChannel
from ..sim import Simulator, Tracer
from ..x86.vm import VirtualMachine
from .fabric import FabricTopology
from .island import Island


class CoordinationMesh:
    """Point-to-point coordination links among registered islands."""

    def __init__(self, sim: Simulator, latency: int, tracer: Optional[Tracer] = None):
        self.sim = sim
        #: Default one-way link latency; :meth:`connect` can override per
        #: link (and :meth:`apply_topology` does, from the spec).
        self.latency = latency
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._islands: dict[str, Island] = {}
        self._handler_vms: dict[str, Optional[VirtualMachine]] = {}
        #: (from, to) -> agent whose sends travel from -> to and whose
        #: receive side applies messages at `from`'s island... see link().
        self._agents: dict[tuple[str, str], CoordinationAgent] = {}
        #: {a, b} -> the raw channel carrying that link.
        self._channels: dict[frozenset, CoordinationChannel] = {}
        #: (from, to) -> failure detector, once the fault domain is armed.
        self._detectors: dict[tuple[str, str], object] = {}
        self._injectors: list = []
        #: The declared fabric shape, once applied — used for next-hop
        #: routing of forwarded messages.
        self.topology: Optional[FabricTopology] = None
        #: The attached control-plane directory, once attached.
        self.directory = None

    def add_island(self, island: Island, handler_vm: Optional[VirtualMachine] = None) -> None:
        """Register an island (``handler_vm`` pays for message handling)."""
        if island.name in self._islands:
            raise ValueError(f"island {island.name!r} already in mesh")
        self._islands[island.name] = island
        self._handler_vms[island.name] = handler_vm

    def islands(self) -> list[Island]:
        """All islands, in registration order."""
        return list(self._islands.values())

    def connect(self, name_a: str, name_b: str, latency: Optional[int] = None) -> None:
        """Create the (bidirectional) link between two islands.

        ``latency`` overrides the mesh default for this one link — the
        knob a topology spec turns to make uplinks slower than
        intra-cluster hops.
        """
        if name_a == name_b:
            raise ValueError("cannot connect an island to itself")
        if (name_a, name_b) in self._agents:
            raise ValueError(f"link {name_a!r}<->{name_b!r} already exists")
        channel = CoordinationChannel(
            self.sim,
            latency=self.latency if latency is None else latency,
            a_name=name_a, b_name=name_b,
            tracer=self.tracer,
        )
        agent_a = CoordinationAgent(
            self.sim,
            self._islands[name_a],
            channel.endpoint(name_a),
            handler_vm=self._handler_vms[name_a],
            tracer=self.tracer,
        )
        agent_b = CoordinationAgent(
            self.sim,
            self._islands[name_b],
            channel.endpoint(name_b),
            handler_vm=self._handler_vms[name_b],
            tracer=self.tracer,
        )
        self._agents[(name_a, name_b)] = agent_a
        self._agents[(name_b, name_a)] = agent_b
        self._channels[frozenset((name_a, name_b))] = channel
        if self.directory is not None:
            agent_a.attach_directory(self.directory, self._forwarder(name_a))
            agent_b.attach_directory(self.directory, self._forwarder(name_b))

    def connect_star(self, hub: str) -> None:
        """Link every island to ``hub`` (centralized coordinator layout)."""
        for name in self._islands:
            if name != hub and (hub, name) not in self._agents:
                self.connect(hub, name)

    def connect_ring(self) -> None:
        """Link islands in a ring (distributed neighbour-gossip layout)."""
        names = list(self._islands)
        count = len(names)
        if count < 2:
            raise ValueError("a ring needs at least two islands")
        for i, name in enumerate(names):
            neighbor = names[(i + 1) % count]
            if (name, neighbor) not in self._agents:
                self.connect(name, neighbor)

    # -- fabric wiring ------------------------------------------------------

    def apply_topology(self, topology: FabricTopology) -> None:
        """Wire every link of a declared fabric at its declared latency.

        Islands named by the topology must already be in the mesh
        (:meth:`add_island` decides handler VMs; the spec only decides
        shape). Links that already exist are left untouched.
        """
        missing = [name for name in topology.islands if name not in self._islands]
        if missing:
            raise ValueError(f"topology names islands not in the mesh: {missing}")
        self.topology = topology
        for name_a, name_b, latency in topology.links():
            if (name_a, name_b) not in self._agents:
                self.connect(name_a, name_b, latency=latency)

    def attach_directory(self, directory) -> None:
        """Bind every agent (current and future) to the control plane.

        Agents resolve non-local entities through ``directory`` and relay
        them along the topology's next-hop routes — a Tune addressed to
        any island can be dropped onto any link and find its way.
        """
        self.directory = directory
        for (frm, _to), agent in self._agents.items():
            agent.attach_directory(directory, self._forwarder(frm))

    def _forwarder(self, at: str):
        """The relay hook for agents at island ``at``: route one hop
        toward the owning island (topology route, or a direct link)."""

        def forward(owner: str, message) -> bool:
            if self.topology is not None:
                hop = self.topology.next_hop(at, owner)
            else:
                hop = owner if (at, owner) in self._agents else None
            if hop is None:
                return False
            relay = self._agents.get((at, hop))
            if relay is None or relay.crashed:
                return False
            relay.endpoint.send(message)
            return True

        return forward

    # -- fault domain -------------------------------------------------------

    def arm_fault_domain(self, config) -> None:
        """Hang a :class:`~repro.faults.FailureDetector` on every agent:
        heartbeats flow on every link, each side walks its peer
        UP -> SUSPECT -> DOWN independently. Arming twice is a no-op for
        already-covered links (new links from later ``connect`` calls are
        covered by calling this again)."""
        from ..faults import FailureDetector

        for key, agent in self._agents.items():
            if key not in self._detectors:
                self._detectors[key] = FailureDetector(
                    self.sim, agent, config, tracer=self.tracer
                )

    def detector(self, from_island: str, to_island: str):
        """The failure detector at ``from_island`` watching its peer over
        the link toward ``to_island`` (fault domain must be armed)."""
        return self._detectors[(from_island, to_island)]

    def inject_link_fault(self, plan, name_a: str, name_b: str):
        """Arm a :class:`~repro.faults.FaultPlan` against one link only.

        Blackouts block senders on this link's channel alone; crashes and
        stalls named ``name_a``/``name_b`` hit this link's agents alone —
        the rest of the mesh never sees the fault. Returns the armed
        :class:`~repro.faults.FaultInjector` (its ``log`` records fires).
        """
        from ..faults import FaultInjector

        channel = self.channel(name_a, name_b)
        injector = FaultInjector(
            self.sim, plan,
            channel=channel,
            agents={
                name_a: self._agents[(name_a, name_b)],
                name_b: self._agents[(name_b, name_a)],
            },
            islands={name: self._islands[name] for name in (name_a, name_b)},
            tracer=self.tracer,
        )
        injector.arm()
        self._injectors.append(injector)
        return injector

    # -- lookups ------------------------------------------------------------

    def agent(self, from_island: str, to_island: str) -> CoordinationAgent:
        """The agent at ``from_island`` on its link toward ``to_island``.

        Its ``send_*`` methods deliver to ``to_island``; its receive side
        applies messages arriving *from* ``to_island``.
        """
        return self._agents[(from_island, to_island)]

    def channel(self, name_a: str, name_b: str) -> CoordinationChannel:
        """The raw channel carrying the ``name_a`` <-> ``name_b`` link."""
        return self._channels[frozenset((name_a, name_b))]

    def neighbors(self, name: str) -> list[str]:
        """Islands this one has links to."""
        return [to for (frm, to) in self._agents if frm == name]

    def messages_handled_at(self, name: str) -> int:
        """Coordination messages handled at an island across all its
        links: Tunes+Triggers applied locally plus messages relayed
        onward for other islands (relays cost this island's manager a
        receive+dispatch too)."""
        total = 0
        for (frm, _to), agent in self._agents.items():
            if frm == name:
                total += (agent.tunes_applied + agent.triggers_applied
                          + agent.forwarded_messages)
        return total

    def dead_letters(self) -> int:
        """Dead-lettered frames across every link (0 for raw mailboxes,
        which never retransmit — only reliable endpoints dead-letter)."""
        total = 0
        for channel in self._channels.values():
            stats = channel.stats()
            total += stats.get("dead_letters", 0)
        return total
