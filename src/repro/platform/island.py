"""The scheduling-island abstraction.

An *island* is a set of resources under the control of a single resource
manager (paper §1). The coordination layer only ever talks to this
interface, so policies are written once and work against any island type —
the "standard mechanisms and interfaces" the paper argues for.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

from ..sim import Simulator, Tracer
from .identity import EntityId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .controller import GlobalController


class Island(abc.ABC):
    """A resource domain with its own manager and native control knobs.

    Concrete islands (x86/Xen, IXP) translate the two standard mechanisms —
    Tune and Trigger — into whatever their local scheduler understands:
    credit-weight adjustments for Xen, thread counts and poll intervals for
    the IXP runtime (paper §3.3).
    """

    def __init__(self, sim: Simulator, name: str, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.name = name
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._controller: Optional["GlobalController"] = None
        self._entities: dict[EntityId, object] = {}

    # -- registration (paper §2.3) ----------------------------------------

    def attach_controller(self, controller: "GlobalController") -> None:
        """Called by the global controller when this island registers."""
        self._controller = controller

    @property
    def controller(self) -> Optional["GlobalController"]:
        """The global controller, once registered."""
        return self._controller

    def register_entity(self, entity_id: EntityId, entity: object) -> None:
        """Expose ``entity`` (a VM, flow queue, ...) to coordination."""
        if entity_id in self._entities:
            raise ValueError(f"entity {entity_id} already registered on island {self.name}")
        self._entities[entity_id] = entity
        if self._controller is not None:
            self._controller.note_entity(self, entity_id)

    def entity(self, entity_id: EntityId) -> object:
        """Look up a registered entity; KeyError if unknown."""
        return self._entities[entity_id]

    def entities(self) -> dict[EntityId, object]:
        """A copy of the registered-entity table."""
        return dict(self._entities)

    def has_entity(self, entity_id: EntityId) -> bool:
        """Whether ``entity_id`` is registered on this island."""
        return entity_id in self._entities

    # -- the two standard coordination mechanisms -------------------------

    @abc.abstractmethod
    def apply_tune(self, entity_id: EntityId, delta: int) -> None:
        """Adjust the entity's resource share by ``delta`` (native units).

        This is the receive side of the paper's **Tune** mechanism: a
        ``(entity, +/- value)`` pair translated into a weight / priority /
        poll-interval adjustment by the local scheduler.
        """

    @abc.abstractmethod
    def apply_trigger(self, entity_id: EntityId) -> None:
        """Give the entity CPU (or equivalent) as soon as possible.

        Receive side of the paper's **Trigger** mechanism, with preemptive
        semantics (e.g. a runqueue boost in the Xen credit scheduler).
        """

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} {self.name!r} entities={len(self._entities)}>"
