"""The scheduling-island abstraction.

An *island* is a set of resources under the control of a single resource
manager (paper §1). The coordination layer only ever talks to this
interface, so policies are written once and work against any island type —
the "standard mechanisms and interfaces" the paper argues for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim import Simulator, Tracer
from .identity import EntityId
from .knobs import ActuationRecord, Knob, KnobRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .controller import GlobalController


class Island:
    """A resource domain with its own manager and native control knobs.

    Concrete islands (x86/Xen, IXP, GPU) register a typed
    :class:`~repro.platform.knobs.Knob` per coordination entity; the two
    standard mechanisms — Tune and Trigger — dispatch over that registry
    into whatever the local scheduler understands: credit-weight
    adjustments for Xen, service weights and poll intervals for the IXP
    runtime, runlist weights for a GPU (paper §3.3). Subclasses with
    non-knob semantics may still override :meth:`apply_tune` /
    :meth:`apply_trigger` directly.
    """

    def __init__(self, sim: Simulator, name: str, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.name = name
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._controller: Optional["GlobalController"] = None
        self._entities: dict[EntityId, object] = {}
        #: The typed actuator table every Tune/Trigger dispatches over.
        self.knobs = KnobRegistry(sim, name, tracer=self.tracer)

    # -- registration (paper §2.3) ----------------------------------------

    def attach_controller(self, controller: "GlobalController") -> None:
        """Called by the global controller when this island registers."""
        self._controller = controller

    @property
    def controller(self) -> Optional["GlobalController"]:
        """The global controller, once registered."""
        return self._controller

    def register_entity(
        self, entity_id: EntityId, entity: object, knob: Optional[Knob] = None
    ) -> None:
        """Expose ``entity`` (a VM, flow queue, ...) to coordination.

        ``knob``, when given, is registered alongside so Tunes and
        Triggers addressed to the entity dispatch through the typed
        actuation layer.
        """
        if entity_id in self._entities:
            raise ValueError(f"entity {entity_id} already registered on island {self.name}")
        self._entities[entity_id] = entity
        if knob is not None:
            self.knobs.register(entity_id, knob)
        if self._controller is not None:
            self._controller.note_entity(self, entity_id)

    def entity(self, entity_id: EntityId) -> object:
        """Look up a registered entity; KeyError if unknown."""
        return self._entities[entity_id]

    def entities(self) -> dict[EntityId, object]:
        """A copy of the registered-entity table."""
        return dict(self._entities)

    def has_entity(self, entity_id: EntityId) -> bool:
        """Whether ``entity_id`` is registered on this island."""
        return entity_id in self._entities

    # -- the two standard coordination mechanisms -------------------------

    def apply_tune(
        self, entity_id: EntityId, delta: int, span: Optional[object] = None
    ) -> ActuationRecord:
        """Adjust the entity's resource share by ``delta`` (native units).

        This is the receive side of the paper's **Tune** mechanism: a
        ``(entity, +/- value)`` pair dispatched through the entity's typed
        knob, which scales, clamps and applies it in the local scheduler's
        native units. ``span`` is the remote decision's causal span (see
        :mod:`repro.obs`), forwarded to the actuation audit.
        """
        return self.knobs.tune(entity_id, delta, span=span)

    def apply_trigger(
        self, entity_id: EntityId, span: Optional[object] = None
    ) -> ActuationRecord:
        """Give the entity CPU (or equivalent) as soon as possible.

        Receive side of the paper's **Trigger** mechanism, with preemptive
        semantics: either a native pulse (e.g. a runqueue boost in the Xen
        credit scheduler) or a refcounted boost lease with deterministic
        expiry. Raises
        :class:`~repro.platform.knobs.UnsupportedTriggerError` when the
        entity's knob has no trigger capability.
        """
        return self.knobs.trigger(entity_id, span=span)

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} {self.name!r} entities={len(self._entities)}>"
