"""Platform topology: scheduling islands, entity identity, global controller.

This package defines the *interfaces* the paper's coordination layer is
written against; the concrete islands live in :mod:`repro.x86` and
:mod:`repro.ixp`.
"""

from .controller import GlobalController, UnknownEntityError
from .identity import EntityId, flow_id, vm_id
from .island import Island

__all__ = [
    "EntityId",
    "GlobalController",
    "Island",
    "UnknownEntityError",
    "flow_id",
    "vm_id",
]
