"""Platform topology: scheduling islands, entity identity, the directory.

This package defines the *interfaces* the paper's coordination layer is
written against; the concrete islands live in :mod:`repro.x86` and
:mod:`repro.ixp`. The control plane is pluggable: a
:class:`~repro.platform.directory.Directory` (central, hierarchical or
gossip) resolves entity ownership over a declarative
:class:`~repro.platform.fabric.FabricTopology`, and the paper-era
:class:`GlobalController` is the central flavour under its original name.
"""

from .controller import GlobalController
from .directory import (
    DIRECTORY_KINDS,
    CentralDirectory,
    ClusterLoad,
    Directory,
    DirectoryBase,
    GossipDirectory,
    HierarchicalDirectory,
    OwnershipRecord,
    PeerRecord,
    UnknownEntityError,
    build_directory,
)
from .fabric import DEFAULT_LINK_LATENCY, ClusterSpec, FabricTopology
from .identity import EntityId, flow_id, vm_id
from .island import Island
from .knobs import (
    ACTUATION_TRACE_KINDS,
    ActuationRecord,
    Knob,
    KnobError,
    KnobRegistry,
    TriggerSpec,
    UnknownKnobError,
    UnsupportedTriggerError,
    weight_knob,
)
from .protocols import HealthSource, Observatory, StatsChannel

__all__ = [
    "ACTUATION_TRACE_KINDS",
    "ActuationRecord",
    "CentralDirectory",
    "ClusterLoad",
    "ClusterSpec",
    "DEFAULT_LINK_LATENCY",
    "DIRECTORY_KINDS",
    "Directory",
    "DirectoryBase",
    "EntityId",
    "FabricTopology",
    "GlobalController",
    "GossipDirectory",
    "HealthSource",
    "HierarchicalDirectory",
    "Island",
    "Knob",
    "KnobError",
    "KnobRegistry",
    "Observatory",
    "OwnershipRecord",
    "PeerRecord",
    "StatsChannel",
    "TriggerSpec",
    "UnknownEntityError",
    "UnknownKnobError",
    "UnsupportedTriggerError",
    "build_directory",
    "flow_id",
    "vm_id",
    "weight_knob",
]
