"""Platform topology: scheduling islands, entity identity, global controller.

This package defines the *interfaces* the paper's coordination layer is
written against; the concrete islands live in :mod:`repro.x86` and
:mod:`repro.ixp`.
"""

from .controller import GlobalController, UnknownEntityError
from .identity import EntityId, flow_id, vm_id
from .island import Island
from .knobs import (
    ACTUATION_TRACE_KINDS,
    ActuationRecord,
    Knob,
    KnobError,
    KnobRegistry,
    TriggerSpec,
    UnknownKnobError,
    UnsupportedTriggerError,
    weight_knob,
)

__all__ = [
    "ACTUATION_TRACE_KINDS",
    "ActuationRecord",
    "EntityId",
    "GlobalController",
    "Island",
    "Knob",
    "KnobError",
    "KnobRegistry",
    "TriggerSpec",
    "UnknownEntityError",
    "UnknownKnobError",
    "UnsupportedTriggerError",
    "flow_id",
    "vm_id",
    "weight_knob",
]
