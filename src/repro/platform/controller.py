"""Global controller: the platform-wide registry (paper §2.3).

"At system initialization time, all scheduling islands register with a
global controller (i.e., the first privileged domain to boot up and have
complete knowledge of the system platform, in our prototype ... part of Xen
Dom0)." The controller does not make resource decisions itself — it only
resolves which island owns which entity, so islands can address Tunes and
Triggers to each other.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..sim import Simulator, Tracer
from .identity import EntityId
from .island import Island


class UnknownEntityError(KeyError):
    """Raised when a coordination message names an unregistered entity."""


class GlobalController:
    """Registry of islands and of the entities deployed across them."""

    def __init__(self, sim: Simulator, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._islands: dict[str, Island] = {}
        self._owner_of: dict[EntityId, str] = {}
        self._channels: dict[str, object] = {}
        self._health_sources: dict[str, object] = {}
        #: The attached control-loop observatory (a
        #: :class:`~repro.obs.ControlLoopCollector`), when tracing is on.
        self._observatory: Optional[object] = None

    # -- island registration ----------------------------------------------

    def register_island(self, island: Island) -> None:
        """Admit an island (and any entities it already knows about)."""
        if island.name in self._islands:
            raise ValueError(f"island {island.name!r} already registered")
        self._islands[island.name] = island
        island.attach_controller(self)
        for entity_id in island.entities():
            self.note_entity(island, entity_id)
        self.tracer.emit("controller", "island-registered", island=island.name)

    def note_entity(self, island: Island, entity_id: EntityId) -> None:
        """Record that ``entity_id`` lives on ``island``."""
        self._owner_of[entity_id] = island.name
        self.tracer.emit(
            "controller", "entity-registered", island=island.name, entity=str(entity_id)
        )

    # -- channel health ----------------------------------------------------

    def register_channel(self, name: str, channel) -> None:
        """Admit a coordination channel (raw or reliable) for platform-wide
        health reporting. ``channel`` must expose ``stats() -> dict``."""
        if name in self._channels:
            raise ValueError(f"channel {name!r} already registered")
        if not callable(getattr(channel, "stats", None)):
            raise TypeError(f"channel {name!r} does not expose stats()")
        self._channels[name] = channel
        self.tracer.emit("controller", "channel-registered", channel=name)

    def channel_health(self) -> dict[str, dict]:
        """Current counters of every registered coordination channel —
        the platform-wide view of delivery, loss, retransmission and
        dead-letter behaviour that scaling to many islands requires.
        Channels exposing ``dead_letters_by_entity()`` (the reliable
        layer) additionally report *which* entities' frames died, so a
        health consumer can react per target instead of reading one bare
        counter."""
        health: dict[str, dict] = {}
        for name, channel in self._channels.items():
            stats = dict(channel.stats())
            by_entity = getattr(channel, "dead_letters_by_entity", None)
            if callable(by_entity):
                stats["dead_letters_by_entity"] = by_entity()
            health[name] = stats
        return health

    # -- peer health ---------------------------------------------------------

    def register_health(self, name: str, source) -> None:
        """Admit a peer-health source (a :class:`~repro.faults.
        FailureDetector`, duck-typed: must expose ``health() -> dict``)."""
        if name in self._health_sources:
            raise ValueError(f"health source {name!r} already registered")
        if not callable(getattr(source, "health", None)):
            raise TypeError(f"health source {name!r} does not expose health()")
        self._health_sources[name] = source
        self.tracer.emit("controller", "health-registered", detector=name)

    def health(self) -> dict[str, dict]:
        """Peer-health snapshot of every registered failure detector:
        state, epochs, heartbeat counters and the transition timeline.
        Empty when the fault domain is unarmed."""
        return {name: source.health() for name, source in self._health_sources.items()}

    # -- actuation layer ----------------------------------------------------

    def knob_snapshot(self) -> dict[str, dict]:
        """Typed description of every knob registered platform-wide.

        Keys are stringified entity ids (``island/name``); values carry the
        knob kind, native unit, current value, bounds, step, trigger
        capability and active lease count — the reflective capability
        discovery that scaling coordination to many resource types needs.
        """
        snapshot: dict[str, dict] = {}
        for island in self._islands.values():
            registry = getattr(island, "knobs", None)
            if registry is not None:
                snapshot.update(registry.snapshot())
        return snapshot

    def actuation_audit(self) -> list:
        """Every island's actuation records merged into one platform-wide
        trail, ordered by (time, island, sequence) — who tuned what, when,
        the requested vs. clamped-applied value, and any rejection reason."""
        records = []
        for island in self._islands.values():
            registry = getattr(island, "knobs", None)
            if registry is not None:
                records.extend(registry.audit)
        records.sort(key=lambda r: (r.time, r.island, r.seq))
        return records

    def actuation_stats(self) -> dict[str, dict[str, int]]:
        """Per-island actuation counters (tunes, clamps, triggers,
        unsupported triggers), keyed by island name."""
        return {
            island.name: island.knobs.stats()
            for island in self._islands.values()
            if getattr(island, "knobs", None) is not None
        }

    # -- control-loop observatory -------------------------------------------

    def attach_observatory(self, collector: object) -> None:
        """Admit the platform's control-loop observatory.

        ``collector`` must expose ``report() -> dict`` (duck-typed so the
        platform layer stays import-free of :mod:`repro.obs`); the testbed
        attaches its :class:`~repro.obs.ControlLoopCollector` here when
        tracing is enabled.
        """
        if not callable(getattr(collector, "report", None)):
            raise TypeError("observatory does not expose report()")
        self._observatory = collector
        self.tracer.emit("controller", "observatory-attached")

    @property
    def observatory(self) -> Optional[object]:
        """The attached control-loop collector, or None when untraced."""
        return self._observatory

    def control_loops(self) -> dict:
        """Control-loop latency introspection: counters plus per-entity and
        per-reason stage percentiles of every completed decision loop.
        Empty when no observatory is attached (tracing off)."""
        if self._observatory is None:
            return {}
        return self._observatory.report()

    # -- lookups ------------------------------------------------------------

    def island(self, name: str) -> Island:
        """The island registered under ``name``; KeyError if unknown."""
        return self._islands[name]

    def islands(self) -> Iterable[Island]:
        """All registered islands, in registration order."""
        return list(self._islands.values())

    def owner_of(self, entity_id: EntityId) -> Island:
        """The island that owns ``entity_id``."""
        island_name = self._owner_of.get(entity_id)
        if island_name is None:
            raise UnknownEntityError(f"no island has registered entity {entity_id}")
        return self._islands[island_name]

    def known_entities(self) -> list[EntityId]:
        """Every entity registered platform-wide."""
        return list(self._owner_of)
