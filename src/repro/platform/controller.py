"""Global controller: the platform-wide registry (paper §2.3).

"At system initialization time, all scheduling islands register with a
global controller (i.e., the first privileged domain to boot up and have
complete knowledge of the system platform, in our prototype ... part of Xen
Dom0)." The controller does not make resource decisions itself — it only
resolves which island owns which entity, so islands can address Tunes and
Triggers to each other.

Since the fabric refactor this is a *name*, not a mechanism: the
machinery lives in :class:`~repro.platform.directory.CentralDirectory`
(one of three :class:`~repro.platform.directory.Directory`
implementations), and ``GlobalController`` is that class under its
paper-era name so the two-island prototype reads like the paper.
"""

from __future__ import annotations

from .directory import CentralDirectory, UnknownEntityError

__all__ = ["GlobalController", "UnknownEntityError"]


class GlobalController(CentralDirectory):
    """Registry of islands and of the entities deployed across them.

    The paper's centralized control plane: every island registers here,
    every entity lookup resolves here. Exactly a
    :class:`~repro.platform.directory.CentralDirectory` — kept as its own
    class so paper-era call sites (and the audit baseline of the fabric
    experiment) keep their vocabulary.
    """
