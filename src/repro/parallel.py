"""Execution planning shared by every process fan-out in the repo.

Both the experiment sweep runner (:mod:`repro.experiments.runner`) and
the shard coordinator (:mod:`repro.shard.runtime`) spread independent
work over worker processes, and both must degrade to serial execution by
the *same* rules — otherwise ``REPRO_PARALLEL=0`` would tame one and not
the other. Those rules live here, in a module with no dependencies
inside the package, so either side can import them without dragging the
other in.

The environment contract:

* ``REPRO_PARALLEL=0`` forces serial execution everywhere;
* ``REPRO_WORKERS`` caps the worker budget (validated at parse time: it
  must be an integer >= 1);
* ``_REPRO_IN_WORKER`` is set inside worker processes, so nested
  fan-outs degrade to serial instead of spawning pools of pools.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import Optional

#: Set to "0" to force serial execution regardless of core count.
PARALLEL_ENV = "REPRO_PARALLEL"
#: Overrides the worker count (useful to cap memory on wide machines).
WORKERS_ENV = "REPRO_WORKERS"
#: Present (any value) inside pool workers; nested fan-outs go serial.
_IN_WORKER_ENV = "_REPRO_IN_WORKER"

_log = logging.getLogger(__name__)
#: Pool-failure causes already reported; each distinct cause logs once.
_logged_fallbacks: set[str] = set()


@dataclass(frozen=True)
class ExecutionPlan:
    """The up-front parallel-or-serial decision for a batch of jobs."""

    parallel: bool
    workers: int
    reason: str

    def __bool__(self) -> bool:
        return self.parallel


def default_workers() -> int:
    """Worker budget: ``REPRO_WORKERS`` if set, else the CPU count.

    ``REPRO_WORKERS`` is validated here, at parse time: it must be an
    integer >= 1, otherwise the sweep would degrade (or die) much later
    inside pool construction with a far less helpful error.
    """
    env = os.environ.get(WORKERS_ENV)
    if env is None or env == "":
        return os.cpu_count() or 1
    try:
        workers = int(env)
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV}={env!r} is not an integer; "
            "set it to a worker count >= 1 or unset it"
        ) from None
    if workers < 1:
        raise ValueError(
            f"{WORKERS_ENV}={env!r} must be >= 1 (use {PARALLEL_ENV}=0 "
            "to force serial execution)"
        )
    return workers


def parallelism_enabled() -> bool:
    """Whether fan-outs may use worker processes at all."""
    if os.environ.get(PARALLEL_ENV, "1") == "0":
        return False
    if _IN_WORKER_ENV in os.environ:
        return False
    return default_workers() >= 2


def plan_execution(njobs: int, max_workers: Optional[int] = None) -> ExecutionPlan:
    """Decide serial vs parallel for ``njobs`` independent jobs.

    Shared by :class:`~repro.experiments.runner.Sweep` and the shard
    coordinator, so every fan-out in the repo degrades by the same rules
    and for inspectable reasons.
    """
    if max_workers is None:
        max_workers = default_workers()
    workers = min(max_workers, njobs)
    if njobs < 2:
        return ExecutionPlan(False, 1, "fewer than two jobs")
    if workers < 2:
        if os.environ.get(WORKERS_ENV) or max_workers != default_workers():
            return ExecutionPlan(False, 1, "worker budget capped at 1")
        return ExecutionPlan(False, 1, "single-CPU host")
    if os.environ.get(PARALLEL_ENV, "1") == "0":
        return ExecutionPlan(False, 1, f"{PARALLEL_ENV}=0")
    if _IN_WORKER_ENV in os.environ:
        return ExecutionPlan(False, 1, "nested inside a pool worker")
    return ExecutionPlan(True, workers, f"{workers} worker processes")


def mark_worker() -> None:
    """Flag this process as a pool worker (nested fan-outs go serial)."""
    os.environ[_IN_WORKER_ENV] = "1"


def log_fallback(cause: str) -> None:
    """Report a pool-failure serial fallback, once per distinct cause."""
    if cause not in _logged_fallbacks:
        _logged_fallbacks.add(cause)
        _log.warning("worker pool unavailable (%s); running jobs serially", cause)


def reset_fallback_warnings() -> None:
    """Forget which fallback causes have been warned about (test hook;
    the sibling of :func:`repro.shard.runtime.reset_degradation_warnings`)."""
    _logged_fallbacks.clear()
