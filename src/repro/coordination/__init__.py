"""The coordination layer: standard Tune/Trigger mechanisms, channel agents
and the paper's three coordination policies."""

from .agent import (
    MESSAGE_HANDLING_COST,
    CoordinationAgent,
    tune_coalesce_key,
    tune_coalesce_merge,
)
from .buffer_monitor import DEFAULT_THRESHOLD_BYTES, BufferMonitorTriggerPolicy
from .coschedule import GpuCoschedulePolicy
from .energy_policy import (
    ENERGY_QOS_MODES,
    MIN_PREDICTED_GAIN,
    EnergyQosGovernor,
    QosTarget,
)
from .messages import CoordinationMessage, RegisterMessage, TriggerMessage, TuneMessage
from .mplayer_policy import (
    HIGH_BITRATE_BPS,
    HIGH_FRAMERATE_FPS,
    STAGE_BITRATE,
    STAGE_FRAMERATE,
    STAGE_OFF,
    StreamQoSTunePolicy,
    StreamState,
)
from .rubis_policy import RequestTypeTunePolicy, TierEntities

__all__ = [
    "BufferMonitorTriggerPolicy",
    "CoordinationAgent",
    "CoordinationMessage",
    "ENERGY_QOS_MODES",
    "EnergyQosGovernor",
    "GpuCoschedulePolicy",
    "DEFAULT_THRESHOLD_BYTES",
    "MIN_PREDICTED_GAIN",
    "QosTarget",
    "HIGH_BITRATE_BPS",
    "HIGH_FRAMERATE_FPS",
    "MESSAGE_HANDLING_COST",
    "RegisterMessage",
    "RequestTypeTunePolicy",
    "STAGE_BITRATE",
    "STAGE_FRAMERATE",
    "STAGE_OFF",
    "StreamQoSTunePolicy",
    "StreamState",
    "TierEntities",
    "TriggerMessage",
    "TuneMessage",
    "tune_coalesce_key",
    "tune_coalesce_merge",
]
