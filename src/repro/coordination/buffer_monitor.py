"""System-level buffer-monitoring Trigger policy.

The paper's second MPlayer scheme (§3.2): "we monitor network-buffer
lengths in the IXP DRAM which correspond to packet queues for the host
VMs ... whenever the buffer-length goes above a defined threshold, an
immediate trigger notification is sent to the x86 host, which should boost
the dequeuing guest VM's position in the runqueue." No application
knowledge is needed — only the IXP runtime's own occupancy counters.
"""

from __future__ import annotations

from typing import Optional

from ..obs import SpanMinter
from ..platform import EntityId
from ..sim import Simulator, Tracer, ms
from ..ixp.island import IXPIsland
from .agent import CoordinationAgent

#: The paper's threshold: triggers fire when a VM's IXP buffer exceeds this.
DEFAULT_THRESHOLD_BYTES = 128 * 1024


class BufferMonitorTriggerPolicy:
    """Fire Triggers when per-VM IXP buffer occupancy crosses a threshold."""

    def __init__(
        self,
        sim: Simulator,
        ixp: IXPIsland,
        agent: CoordinationAgent,
        vm_entities: dict[str, EntityId],
        threshold_bytes: int = DEFAULT_THRESHOLD_BYTES,
        cooldown: int = ms(100),
        tracer: Optional[Tracer] = None,
    ):
        """``vm_entities`` maps flow-queue names (VM host names) to the x86
        entities to boost. ``cooldown`` rate-limits triggers per VM so a
        persistently full buffer does not melt the channel."""
        if threshold_bytes <= 0:
            raise ValueError("threshold must be positive")
        self.sim = sim
        self.ixp = ixp
        self.agent = agent
        self.vm_entities = vm_entities
        self.threshold_bytes = threshold_bytes
        self.cooldown = cooldown
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._minter = SpanMinter.shared(self.tracer)
        self._last_trigger: dict[str, int] = {}
        self.triggers_sent = 0
        #: Triggers withheld while the peer island was DOWN. Triggers are
        #: transient (the buffer either drains or re-crosses the threshold
        #: next scan), so there is nothing to replay on recovery.
        self.triggers_suppressed = 0
        #: (time, vm, occupancy) log of fired triggers, for Figure 7.
        self.trigger_log: list[tuple[int, str, int]] = []
        ixp.xscale.every(ixp.params.monitor_period, self._scan, name="buffer-monitor")

    def _scan(self) -> None:
        for vm_name, entity in self.vm_entities.items():
            queue = self.ixp.flow_queues.get(vm_name)
            if queue is None:
                continue
            occupancy = queue.occupancy_bytes
            if occupancy < self.threshold_bytes:
                continue
            last = self._last_trigger.get(vm_name)
            if last is not None and self.sim.now - last < self.cooldown:
                continue
            if not self.agent.peer_available:
                # Degraded mode: no remote Triggers into a dead peer. The
                # cooldown clock is *not* advanced, so the first scan after
                # recovery may fire immediately if the buffer is still full.
                self.triggers_suppressed += 1
                if self.tracer.wants("degraded-suppressed"):
                    self.tracer.emit(
                        "buffer-monitor", "degraded-suppressed", vm=vm_name,
                        occupancy=occupancy,
                    )
                continue
            self._last_trigger[vm_name] = self.sim.now
            self.triggers_sent += 1
            self.trigger_log.append((self.sim.now, vm_name, occupancy))
            span = None
            if self._minter.active:
                span = self._minter.mint(
                    "buffer-monitor", entity=str(entity), reason="buffer-threshold",
                    op="trigger", vm=vm_name, occupancy=occupancy,
                )
            self.agent.send_trigger(entity, reason=f"buffer={occupancy}B", span=span)
            self.tracer.emit(
                "buffer-monitor", "trigger", vm=vm_name, occupancy=occupancy
            )
