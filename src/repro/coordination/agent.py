"""Coordination agents: the receive side of the channel on each island.

An agent binds a channel endpoint to its local island. Incoming Tunes and
Triggers are resolved against the island's entity table and translated via
the island's native knobs (:meth:`Island.apply_tune` /
:meth:`Island.apply_trigger`). On the x86 side the agent runs inside Dom0,
so every handled message costs Dom0 a little system CPU before it takes
effect — coordination is not free, which is exactly the paper's point
about the +3 % minimum-latency overhead.
"""

from __future__ import annotations

from typing import Optional

from ..platform import Island, KnobError
from ..sim import Simulator, Tracer, us
from ..interconnect import ChannelEndpoint
from ..x86.vm import VirtualMachine
from .messages import RegisterMessage, TriggerMessage, TuneMessage

#: Dom0 CPU consumed to receive + decode + dispatch one message.
MESSAGE_HANDLING_COST = us(15)


def tune_coalesce_key(message):
    """Coalesce key for the reliable layer: Tunes merge per target entity;
    everything else (Triggers, Registers, custom messages) never merges."""
    if isinstance(message, TuneMessage):
        return ("tune", message.entity)
    return None


def tune_coalesce_merge(pending: TuneMessage, new: TuneMessage):
    """Merge two pending Tunes for one entity into a single frame.

    Deltas add (they are relative adjustments), the earliest send timestamp
    is kept so apply-latency accounting reflects the oldest queued intent,
    and a zero combined delta cancels the pending frame outright. The new
    message's span survives as the merged frame's identity, absorbing the
    pending span as a merged parent — when the merged frame is applied,
    both originating decisions are attributed. The merged frame carries
    the newest epoch, so a replayed Tune merging with a pre-outage one is
    not discarded as stale at the receiver.
    """
    delta = pending.delta + new.delta
    if delta == 0:
        return None
    if new.span is not None and pending.span is not None:
        span = new.span.absorbing(pending.span)
    else:
        span = new.span if new.span is not None else pending.span
    return TuneMessage(
        entity=pending.entity,
        delta=delta,
        reason=new.reason or pending.reason,
        sent_at=pending.sent_at if pending.sent_at >= 0 else new.sent_at,
        span=span,
        epoch=max(pending.epoch, new.epoch),
    )


class CoordinationAgent:
    """Applies coordination messages arriving at one island."""

    def __init__(
        self,
        sim: Simulator,
        island: Island,
        endpoint: ChannelEndpoint,
        handler_vm: Optional[VirtualMachine] = None,
        handling_cost: int = MESSAGE_HANDLING_COST,
        tracer: Optional[Tracer] = None,
    ):
        """``handler_vm`` is the domain whose CPU pays for message handling
        (Dom0 on the x86 island; None for islands with a free control core
        like the IXP's XScale). ``handling_cost`` is that per-message CPU
        cost — zero models the hardware-assisted signalling of the paper's
        §3.3 hardware discussion."""
        self.sim = sim
        self.island = island
        self.endpoint = endpoint
        self.handler_vm = handler_vm
        self.handling_cost = handling_cost
        self.tracer = tracer or Tracer(sim, enabled=False)
        #: End-to-end latencies (send -> applied) of timestamped messages
        #: that were actually applied — unknown-entity messages are excluded
        #: so this measures successful coordination, not channel traffic.
        self.apply_latencies: list[int] = []
        endpoint.set_receiver(self._on_message)
        # A reliable endpoint accepts coalescing hooks: merge bursty Tunes
        # for one entity into a single pending frame while an ack is due.
        if hasattr(endpoint, "set_coalescer"):
            endpoint.set_coalescer(tune_coalesce_key, tune_coalesce_merge)
        self.tunes_applied = 0
        self.triggers_applied = 0
        self.unknown_entities = 0
        #: Triggers addressed to entities whose knob cannot boost (e.g.
        #: ``mem:<vm>``): counted and traced, never fatal to the run.
        self.unsupported_triggers = 0
        #: Applied messages whose ``sent_at`` was the -1 sentinel (built
        #: outside an agent): skipped from ``apply_latencies``, not lost.
        self.untimestamped_applies = 0
        self._custom_handlers: dict[type, list] = {}
        # -- fabric state (inert until a directory is attached) -----------
        #: The control-plane directory this agent resolves remote entities
        #: through (None = pre-fabric behaviour: unknown entities are
        #: counted and dropped).
        self._directory = None
        #: ``forward(owner_island_name, message) -> bool`` relay hook
        #: installed by the mesh; returns True when the message was routed
        #: one hop toward its owner.
        self._forward = None
        #: Messages relayed toward their owning island instead of dying
        #: as unknown-entity drops.
        self.forwarded_messages = 0
        # -- fault-domain state (inert until a detector is attached) ------
        #: This agent's epoch; stamped onto every outgoing Tune/Trigger.
        #: Bumped by the failure detector on recovery (and on restart
        #: after a crash) so the peer can discard stale in-flight frames.
        self.epoch = 0
        #: True while crash-injected: incoming messages are dropped,
        #: outgoing sends suppressed, heartbeats stop.
        self.crashed = False
        self._stalled_until = -1
        self._stall_queue: list = []
        #: The attached :class:`~repro.faults.FailureDetector`, when the
        #: fault domain is armed; None keeps every fault check a single
        #: attribute test on the hot path.
        self.detector = None
        #: Declared local-baseline knob values (entity -> native value),
        #: reverted to on peer-DOWN and at epoch boundaries.
        self._baselines: dict = {}
        self.stale_epoch_drops = 0
        self.dropped_while_crashed = 0
        self.suppressed_sends = 0

    def register_message_handler(self, message_type: type, handler) -> None:
        """Extend the coordination vocabulary with a custom message type.

        The paper argues for *standard* mechanisms but an extensible
        interface; new island-to-island messages (e.g. power telemetry)
        plug in here without touching Tune/Trigger handling.
        """
        self._custom_handlers.setdefault(message_type, []).append(handler)

    # -- fabric surface -------------------------------------------------------

    def attach_directory(self, directory, forward=None) -> None:
        """Bind this agent to the control-plane directory.

        With a directory attached, a Tune/Trigger for an entity this
        island does not own is *resolved* (``directory.lookup``) instead
        of dropped; when ``forward`` is also given and the entity lives
        elsewhere, the message is relayed one hop toward its owner
        (counted in :attr:`forwarded_messages`, traced as
        ``msg-forwarded``). Without a directory the pre-fabric behaviour
        is untouched: unknown entities count and drop.
        """
        self._directory = directory
        self._forward = forward

    def _resolve_remote(self, message) -> bool:
        """Try to relay a message for a non-local entity toward its owner.

        True when the directory named another island as the owner *and*
        the mesh's forward hook routed the message one hop that way. The
        original ``sent_at`` rides along, so apply-latency accounting
        spans the whole relay path.
        """
        if self._directory is None:
            return False
        owner = self._directory.lookup(message.entity, frm=self.island.name)
        if owner is None or owner == self.island.name or self._forward is None:
            return False
        if not self._forward(owner, message):
            return False
        self.forwarded_messages += 1
        if self.tracer.wants("msg-forwarded"):
            self.tracer.emit(
                "coord", "msg-forwarded", at=self.endpoint.name, to=owner,
                entity=str(message.entity),
            )
        return True

    # -- fault-domain surface -------------------------------------------------

    @property
    def stalled(self) -> bool:
        """True while a :class:`~repro.faults.ManagerStall` is active."""
        return self._stalled_until >= 0

    @property
    def peer_available(self) -> bool:
        """False while this agent is crashed or its failure detector holds
        the peer DOWN — the gate policies consult before emitting remote
        Tunes/Triggers. Always True when the fault domain is unarmed."""
        if self.crashed:
            return False
        detector = self.detector
        return detector is None or not detector.is_down

    def attach_detector(self, detector) -> None:
        """Bind this agent to its failure detector (fault domain armed)."""
        self.detector = detector

    def declare_baseline(self, entity, value: float) -> None:
        """Declare ``entity``'s local-baseline knob value: the degraded
        mode the island falls back to on peer-DOWN and the reference a
        recovering peer's replayed deltas are applied against."""
        self._baselines[entity] = value

    def baselines(self) -> dict:
        """The declared local baselines (entity -> native value)."""
        return dict(self._baselines)

    def revert_to_baselines(self, reason: str) -> None:
        """Restore every declared baseline through the island's audited
        knob registry. Entities with an active boost lease are skipped —
        the lease's TTL expiry restores the true original (the baseline)."""
        knobs = getattr(self.island, "knobs", None)
        if knobs is None:
            return
        for entity, value in self._baselines.items():
            if knobs.has(entity):
                knobs.revert(entity, value, reason=reason)

    def crash(self) -> None:
        """Crash-inject this agent: drop incoming, suppress outgoing."""
        self.crashed = True
        self._stalled_until = -1
        self._stall_queue.clear()
        self.tracer.emit("coord", "agent-crashed", at=self.endpoint.name)

    def restart(self) -> None:
        """Restart after a crash with a bumped epoch, so frames it sent
        before dying are discarded as stale by the peer."""
        if not self.crashed:
            return
        self.crashed = False
        self.epoch += 1
        self.tracer.emit(
            "coord", "agent-restarted", at=self.endpoint.name, epoch=self.epoch
        )

    def stall(self, duration: int) -> None:
        """Stall the manager: defer incoming messages for ``duration`` ns
        (overlapping stalls extend the window), then flush in order."""
        if self.crashed:
            return
        self._stalled_until = self.sim.now + duration
        self.tracer.emit(
            "coord", "agent-stalled", at=self.endpoint.name, until=self._stalled_until
        )
        self.sim.call_at(self._stalled_until, self._end_stall)

    def _end_stall(self) -> None:
        if self.crashed or self._stalled_until < 0 or self.sim.now < self._stalled_until:
            return  # crashed meanwhile, already flushed, or extended
        self._stalled_until = -1
        queued, self._stall_queue = self._stall_queue, []
        self.tracer.emit(
            "coord", "agent-resumed", at=self.endpoint.name, queued=len(queued)
        )
        for message in queued:
            self._on_message(message)

    # -- send helpers ---------------------------------------------------------

    def send_tune(self, entity, delta: int, reason: str = "", span=None) -> None:
        """Request a resource adjustment on the remote island.

        ``span`` is the minting policy's causal span (None when tracing is
        off); it rides inside the message to the remote knob registry.
        """
        if self.crashed:
            self.suppressed_sends += 1
            return
        if span is not None and self.tracer.wants("span-sent"):
            self.tracer.emit(
                "coord", "span-sent", trace=span.trace_id, span=span.span_id,
                frm=self.endpoint.name,
            )
        self.endpoint.send(
            TuneMessage(
                entity=entity, delta=delta, reason=reason, sent_at=self.sim.now,
                span=span, epoch=self.epoch,
            )
        )

    def send_trigger(self, entity, reason: str = "", span=None) -> None:
        """Request immediate resource allocation on the remote island."""
        if self.crashed:
            self.suppressed_sends += 1
            return
        if span is not None and self.tracer.wants("span-sent"):
            self.tracer.emit(
                "coord", "span-sent", trace=span.trace_id, span=span.span_id,
                frm=self.endpoint.name,
            )
        self.endpoint.send(
            TriggerMessage(
                entity=entity, reason=reason, sent_at=self.sim.now, span=span,
                epoch=self.epoch,
            )
        )

    # -- receive path ------------------------------------------------------------

    def _on_message(self, message) -> None:
        if self.crashed:
            self.dropped_while_crashed += 1
            self.tracer.emit(
                "coord", "msg-dropped-crashed", at=self.endpoint.name,
                message=repr(message),
            )
            return
        if self._stalled_until >= 0:
            self._stall_queue.append(message)
            return
        detector = self.detector
        if detector is not None:
            epoch = getattr(message, "epoch", None)
            if epoch is not None:
                if epoch < detector.peer_epoch:
                    # A stale in-flight/retransmitted frame from before the
                    # peer's recovery: applying it would undo the replayed
                    # snapshot. Discard (the reliable layer still acks the
                    # carrying frame, so retransmission churn stops).
                    self.stale_epoch_drops += 1
                    if self.tracer.wants("stale-epoch-dropped"):
                        self.tracer.emit(
                            "coord", "stale-epoch-dropped", at=self.endpoint.name,
                            epoch=epoch, current=detector.peer_epoch,
                            message=repr(message),
                        )
                    return
                if epoch > detector.peer_epoch:
                    detector.note_peer_epoch(epoch)
        span = getattr(message, "span", None)
        if span is not None and self.tracer.wants("span-recv"):
            self.tracer.emit(
                "coord", "span-recv", trace=span.trace_id, span=span.span_id,
                at=self.endpoint.name,
            )
        if self.handler_vm is not None and self.handling_cost > 0:
            # Pay the handling cost first, then apply: spawn a tiny process.
            self.sim.spawn(self._handle_with_cost(message), name="coord-agent-handle")
        else:
            self._apply(message)

    def _handle_with_cost(self, message):
        yield self.handler_vm.execute(self.handling_cost, kind="sys")
        self._apply(message)

    def _apply(self, message) -> None:
        span = getattr(message, "span", None)
        if span is not None and self.tracer.wants("span-handle"):
            self.tracer.emit(
                "coord", "span-handle", trace=span.trace_id, span=span.span_id,
                at=self.endpoint.name,
            )
        if isinstance(message, TuneMessage):
            if not self.island.has_entity(message.entity):
                if self._resolve_remote(message):
                    return
                self.unknown_entities += 1
                self.tracer.emit("coord", "unknown-entity", entity=str(message.entity))
                return
            self.island.apply_tune(message.entity, message.delta, span=span)
            self.tunes_applied += 1
            self._record_apply_latency(message)
        elif isinstance(message, TriggerMessage):
            if not self.island.has_entity(message.entity):
                if self._resolve_remote(message):
                    return
                self.unknown_entities += 1
                self.tracer.emit("coord", "unknown-entity", entity=str(message.entity))
                return
            try:
                self.island.apply_trigger(message.entity, span=span)
            except KnobError:
                # A Trigger addressed to a non-boostable entity (a balloon
                # target, an egress queue, ...) is a policy mistake, not a
                # platform fault: account it and keep the simulation alive.
                # The knob registry already emitted the unsupported-trigger
                # trace record and audited the rejection.
                self.unsupported_triggers += 1
                return
            self.triggers_applied += 1
            self._record_apply_latency(message)
        elif isinstance(message, RegisterMessage):
            # Registration bookkeeping is handled by the global controller;
            # islands just learn that the entity exists remotely.
            self.tracer.emit("coord", "register-seen", entity=str(message.entity))
        else:
            handlers = self._custom_handlers.get(type(message))
            if not handlers:
                raise TypeError(f"unknown coordination message {message!r}")
            for handler in handlers:
                handler(message)
            self._record_apply_latency(message)

    def _record_apply_latency(self, message) -> None:
        """Account end-to-end latency for a message that took effect.

        Messages constructed outside an agent carry the ``sent_at = -1``
        sentinel (as do custom message types without the field); recording
        ``now - (-1)`` would poison the latency distribution with bogus
        near-``now`` values, so they are skipped and counted instead.
        """
        sent_at = getattr(message, "sent_at", -1)
        if sent_at < 0:
            self.untimestamped_applies += 1
            self.tracer.emit("coord", "untimestamped-apply", message=repr(message))
            return
        self.apply_latencies.append(self.sim.now - sent_at)

    def channel_stats(self) -> dict[str, int]:
        """Reliability counters of this agent's endpoint (empty when the
        agent rides the raw, unacknowledged mailbox)."""
        stats = getattr(self.endpoint, "stats", None)
        return stats() if callable(stats) else {}
