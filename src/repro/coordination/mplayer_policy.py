"""Stream-property-driven Tune policy for media streaming.

The paper's first MPlayer scheme (§3.2): "when an RTSP session is
established, the IXP maintains bit- and frame-rate state on a per guest
virtual machine basis ... The IXP sends an 'Increase weight' message for a
high bit-rate, high frame-rate stream, whereas 'Decrease weight' message is
sent when servicing low bit-rate, low frame-rate streams."

The paper applies the scheme in stages on a live system (Figure 6): first
weights follow bit-rate detection (256-256 -> 384-512), then the higher
frame-rate requirement earns a further increase *and* more IXP threads for
that VM's receive queue "in tandem" (-> 384-640). The policy therefore
keeps per-VM stream state from RTSP setup and can advance its stage at
runtime, re-actuating for every known stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs import SpanMinter
from ..platform import EntityId
from ..sim import Simulator, Tracer
from ..ixp.island import IXPIsland
from ..net import Packet
from .agent import CoordinationAgent

#: Streams at or above this bitrate count as "high bit-rate".
HIGH_BITRATE_BPS = 500_000
#: Streams at or above this frame rate count as "high frame-rate".
HIGH_FRAMERATE_FPS = 24.0

#: Policy stages, in escalation order.
STAGE_OFF = "off"
STAGE_BITRATE = "bitrate"
STAGE_FRAMERATE = "framerate"
_STAGES = (STAGE_OFF, STAGE_BITRATE, STAGE_FRAMERATE)


@dataclass
class StreamState:
    """Per-VM stream properties learned from RTSP session setup."""

    vm: str
    bitrate_bps: int
    framerate_fps: float

    @property
    def is_high_bitrate(self) -> bool:
        return self.bitrate_bps >= HIGH_BITRATE_BPS

    @property
    def is_high_framerate(self) -> bool:
        return self.framerate_fps >= HIGH_FRAMERATE_FPS


class StreamQoSTunePolicy:
    """Translate stream-level properties into CPU weight (and IXP thread)
    allocations, with runtime stage escalation."""

    def __init__(
        self,
        sim: Simulator,
        ixp: IXPIsland,
        agent: CoordinationAgent,
        vm_entities: dict[str, EntityId],
        stage: str = STAGE_OFF,
        base_weight: int = 256,
        high_bitrate_delta: int = 256,
        mid_bitrate_delta: int = 128,
        low_bitrate_delta: int = -128,
        framerate_delta: int = 128,
        tandem_ixp_threads: int = 2,
        tracer: Optional[Tracer] = None,
    ):
        """``vm_entities`` maps VM host names (stream destinations) to
        their x86 entity ids. The per-stage target weight of a VM is
        ``base + bitrate component (+ framerate component at the framerate
        stage)``; advancing the stage re-actuates every known stream."""
        if stage not in _STAGES:
            raise ValueError(f"unknown stage {stage!r}; expected one of {_STAGES}")
        self.sim = sim
        self.ixp = ixp
        self.agent = agent
        self.vm_entities = vm_entities
        self.stage = stage
        self.base_weight = base_weight
        self.high_bitrate_delta = high_bitrate_delta
        self.mid_bitrate_delta = mid_bitrate_delta
        self.low_bitrate_delta = low_bitrate_delta
        self.framerate_delta = framerate_delta
        self.tandem_ixp_threads = tandem_ixp_threads
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._minter = SpanMinter.shared(self.tracer)
        self.streams: dict[str, StreamState] = {}
        self._shadow: dict[str, int] = {}
        self._ixp_tandem_applied: set[str] = set()
        self.tunes_sent = 0
        #: Tunes withheld while the peer island was DOWN (degraded mode).
        self.tunes_suppressed = 0
        #: Tunes replayed on recovery to reconverge the remote weights.
        self.replays_sent = 0
        ixp.add_classified_hook(self._on_classified)
        detector = getattr(agent, "detector", None)
        if detector is not None:
            detector.on_up(self._replay)

    # -- stream discovery (RTSP setup tap on the Rx path) ----------------------

    def _on_classified(self, packet: Packet, flow: str) -> None:
        info = packet.payload.get("rtsp_setup")
        if info is None:
            return
        vm_name = packet.dst
        if vm_name not in self.vm_entities or vm_name in self.streams:
            return
        self.streams[vm_name] = StreamState(
            vm=vm_name,
            bitrate_bps=info["bitrate_bps"],
            framerate_fps=info["framerate_fps"],
        )
        self._shadow.setdefault(vm_name, self.base_weight)
        self._actuate(vm_name)

    # -- stage control ------------------------------------------------------------

    def advance_stage(self, stage: str) -> None:
        """Escalate the policy at runtime and re-actuate known streams."""
        if stage not in _STAGES:
            raise ValueError(f"unknown stage {stage!r}; expected one of {_STAGES}")
        self.stage = stage
        for vm_name in self.streams:
            self._actuate(vm_name)

    def target_weight(self, state: StreamState) -> int:
        """The stage-dependent weight target for a stream's VM."""
        if self.stage == STAGE_OFF:
            return self._shadow.get(state.vm, self.base_weight)
        if state.is_high_bitrate:
            target = self.base_weight + self.high_bitrate_delta
        elif state.framerate_fps >= 15.0:
            target = self.base_weight + self.mid_bitrate_delta
        else:
            target = self.base_weight + self.low_bitrate_delta
        if self.stage == STAGE_FRAMERATE and state.is_high_framerate:
            target += self.framerate_delta
        return target

    def _actuate(self, vm_name: str) -> None:
        state = self.streams[vm_name]
        if self.stage == STAGE_OFF:
            return
        target = self.target_weight(state)
        current = self._shadow[vm_name]
        delta = target - current
        reason = f"stream-qos:{self.stage}"
        if delta != 0:
            self._shadow[vm_name] = target
            if not self.agent.peer_available:
                # Degraded mode: keep the desired target in the shadow for
                # the recovery replay, send nothing remote. Local (IXP
                # tandem) actuation below is unaffected — local knobs
                # never needed the channel.
                self.tunes_suppressed += 1
                if self.tracer.wants("degraded-suppressed"):
                    self.tracer.emit(
                        "mplayer-policy", "degraded-suppressed", vm=vm_name,
                        desired=target,
                    )
            else:
                self.tunes_sent += 1
                span = None
                if self._minter.active:
                    span = self._minter.mint(
                        "mplayer-policy", entity=str(self.vm_entities[vm_name]),
                        reason=reason, op="tune", vm=vm_name,
                    )
                self.agent.send_tune(
                    self.vm_entities[vm_name], delta, reason=reason, span=span
                )
        if (
            self.stage == STAGE_FRAMERATE
            and state.is_high_framerate
            and vm_name not in self._ixp_tandem_applied
        ):
            # "...and also increase the number of IXP threads servicing
            # Domain-2 receive queue in tandem."
            ixp_entity = EntityId(self.ixp.name, vm_name)
            if self.ixp.has_entity(ixp_entity):
                tandem_span = None
                if self._minter.active:
                    tandem_span = self._minter.mint(
                        "mplayer-policy", entity=str(ixp_entity),
                        reason=f"{reason}:tandem", op="tune", vm=vm_name,
                    )
                self.ixp.apply_tune(
                    ixp_entity, self.tandem_ixp_threads, span=tandem_span
                )
                self._ixp_tandem_applied.add(vm_name)
        self.tracer.emit(
            "mplayer-policy", "actuated", vm=vm_name, stage=self.stage, target=target
        )

    def _replay(self) -> None:
        """Reconverge after recovery: one delta-from-baseline per VM
        restores the stage-desired weights onto the peer's reverted
        baselines (see :meth:`RequestTypeTunePolicy._replay`)."""
        for vm_name, desired in self._shadow.items():
            delta = desired - self.base_weight
            if delta == 0:
                continue
            self.replays_sent += 1
            self.tunes_sent += 1
            span = None
            if self._minter.active:
                span = self._minter.mint(
                    "mplayer-policy", entity=str(self.vm_entities[vm_name]),
                    reason="epoch-replay", op="tune", vm=vm_name,
                )
            self.agent.send_tune(
                self.vm_entities[vm_name], delta, reason="epoch-replay", span=span
            )

    def channel_stats(self) -> dict[str, int]:
        """Reliability counters of the sending endpoint (empty over the
        raw mailbox); stage re-actuations for the same VM coalesce while
        an earlier Tune is still awaiting its ack."""
        return self.agent.channel_stats()
