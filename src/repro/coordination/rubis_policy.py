"""Request-type-driven Tune policy for multi-tier web applications.

The paper's RUBiS coordination scheme (§3.1): the IXP's classification
engine recovers the request type of each incoming packet, and per request
the IXP island sends weight increase/decrease messages toward the x86
island — "Browsing related requests result in sending 'weight increase'
messages for the web VM and 'weight decrease' message for the database
server, whereas servlet versions will correspond to 'weight increase'
messages for the database server domains. Given that the application
server sees increased activity for processing both request types, its
weight is increased in accordance with web server weight for read requests,
and with database server weight for write requests."

The magnitudes come from *offline profiling* (paper: "We use offline
profiles of behavior of the RUBiS components for various workloads to
actuate coordination"): each request class has a target weight vector
proportional to the tiers' profiled CPU burn under that class, scaled so
that a tier serving its class can stay UNDER in the credit scheduler (that
is what removes the run-queue steal time the baseline suffers). Each
classified request moves the shadow weights one bounded step toward the
current class's target, so the actual weights track an EWMA of the instant
read/write mix — and lag it when the mix oscillates faster than the
channel round-trip, the misapplication artefact the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import SpanMinter
from ..platform import EntityId
from ..sim import Simulator, Tracer
from ..ixp.island import IXPIsland
from ..net import Packet
from .agent import CoordinationAgent


@dataclass(frozen=True, slots=True)
class TierEntities:
    """The three RUBiS tier VMs as coordination targets."""

    web: EntityId
    app: EntityId
    db: EntityId


@dataclass(frozen=True, slots=True)
class WeightProfile:
    """Offline-profiled target weights for one request class."""

    web: int
    app: int
    db: int


#: Browsing (read) profile: static content — web-heavy, db nearly idle.
READ_PROFILE = WeightProfile(web=768, app=512, db=384)
#: Servlet (write) profile: database-heavy, app significant, web light.
WRITE_PROFILE = WeightProfile(web=384, app=576, db=832)


class RequestTypeTunePolicy:
    """Per-request weight steering from IXP-side request classification."""

    def __init__(
        self,
        sim: Simulator,
        ixp: IXPIsland,
        agent: CoordinationAgent,
        tiers: TierEntities,
        step: int = 64,
        base_weight: int = 256,
        read_profile: WeightProfile = READ_PROFILE,
        write_profile: WeightProfile = WRITE_PROFILE,
        tracer: Tracer | None = None,
    ):
        """``agent`` must be the IXP-side agent (it sends toward x86).

        The policy keeps *shadow weights* — its belief of each tier's
        current weight — and moves them at most ``step`` per classified
        request toward the active class profile. The shadow can go stale
        while messages are in flight; that staleness is a modelled
        artefact, not a bug.
        """
        if step <= 0:
            raise ValueError("step must be positive")
        self.sim = sim
        self.agent = agent
        self.tiers = tiers
        self.step = step
        self.read_profile = read_profile
        self.write_profile = write_profile
        self.tracer = tracer or Tracer(sim, enabled=False)
        #: Platform-shared span minter: every steering decision roots a
        #: causal span linking the classified packet to the remote apply.
        self._minter = SpanMinter.shared(self.tracer)
        self.base_weight = base_weight
        self._shadow = {tiers.web: base_weight, tiers.app: base_weight, tiers.db: base_weight}
        self.requests_seen = 0
        self.tunes_sent = 0
        #: Tunes withheld while the peer island was DOWN (degraded mode).
        self.tunes_suppressed = 0
        #: Tunes replayed on recovery to reconverge the remote weights.
        self.replays_sent = 0
        ixp.add_classified_hook(self._on_classified)
        # Fault domain armed: replay the desired snapshot on peer recovery.
        detector = getattr(agent, "detector", None)
        if detector is not None:
            detector.on_up(self._replay)

    # -- IXP-side tap ----------------------------------------------------------

    def _on_classified(self, packet: Packet, flow: str) -> None:
        request_class = packet.payload.get("request_class")
        if request_class is None:
            return  # not an application request (fragment, stream, ...)
        if request_class == "read":
            profile = self.read_profile
        elif request_class == "write":
            profile = self.write_profile
        else:
            self.tracer.emit("rubis-policy", "unknown-class", cls=request_class)
            return
        self.requests_seen += 1
        self._steer(self.tiers.web, profile.web, request_class, packet)
        self._steer(self.tiers.app, profile.app, request_class, packet)
        self._steer(self.tiers.db, profile.db, request_class, packet)

    def _steer(
        self, entity: EntityId, target: int, reason: str, packet: Packet
    ) -> None:
        current = self._shadow[entity]
        gap = target - current
        if gap == 0:
            return
        delta = max(-self.step, min(self.step, gap))
        self._shadow[entity] = current + delta
        if not self.agent.peer_available:
            # Degraded mode: the peer is DOWN (it has reverted to its
            # declared baselines), so remote Tunes would black-hole. The
            # shadow keeps tracking the *desired* weight; recovery replays
            # it as one delta from baseline.
            self.tunes_suppressed += 1
            if self.tracer.wants("degraded-suppressed"):
                self.tracer.emit(
                    "rubis-policy", "degraded-suppressed", entity=str(entity),
                    desired=self._shadow[entity],
                )
            return
        self.tunes_sent += 1
        span = None
        if self._minter.active:
            # Root of the causal chain: this classified packet's decision.
            span = self._minter.mint(
                "rubis-policy", entity=str(entity), reason=reason, op="tune",
                pid=packet.pid, pkt_rx=packet.stamps.get("ixp-rx"),
            )
        self.agent.send_tune(entity, delta, reason=reason, span=span)

    def _replay(self) -> None:
        """Reconverge after recovery: replay the desired snapshot.

        The epoch-boundary contract guarantees the remote tiers are at
        their declared baselines when messages of the new epoch land, so
        one delta-from-baseline per tier restores the policy's desired
        weights exactly — no per-request re-steering marathon."""
        for entity, desired in self._shadow.items():
            delta = desired - self.base_weight
            if delta == 0:
                continue
            self.replays_sent += 1
            self.tunes_sent += 1
            span = None
            if self._minter.active:
                span = self._minter.mint(
                    "rubis-policy", entity=str(entity), reason="epoch-replay",
                    op="tune",
                )
            self.agent.send_tune(entity, delta, reason="epoch-replay", span=span)

    def shadow_weights(self) -> dict[EntityId, int]:
        """The policy's current belief of tier weights."""
        return dict(self._shadow)

    def channel_stats(self) -> dict[str, int]:
        """Reliability counters of the sending endpoint, when the agent is
        bound to the reliable layer. Per-request Tunes make this policy
        the main beneficiary of coalescing: under bursty mixes many of its
        ``tunes_sent`` collapse into far fewer frames on the wire."""
        return self.agent.channel_stats()
