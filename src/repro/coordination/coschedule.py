"""GPU/CPU co-scheduling policy (the paper's GViM motivation).

§1: "there are additional examples that demonstrate the need for
coordinated resource management, including recent work in which
performance improvements are gained by better co-scheduling tasks on
graphics vs. x86 cores to attain desired levels of parallelism."

The pathology: a hybrid application alternates CPU phases and GPU kernels.
Its VM blocks while a kernel runs, so a CPU-hungry neighbour absorbs the
cores; when the kernel completes, the hybrid VM — whose CPU appetite keeps
its credits negative — wakes into the OVER band and waits out the
neighbour's slices before it can even *launch* the next kernel. Both the
CPU and the GPU sit on the critical path and each idles while the other's
manager dithers.

The policy: the GPU island Triggers the VM's x86 island entity at every
kernel-completion, so the CPU phase starts immediately — two resource
managers handing the baton instead of dropping it.
"""

from __future__ import annotations

from typing import Optional

from ..obs import SpanMinter
from ..platform import EntityId
from ..sim import Simulator, Tracer
from ..gpu.island import GPUIsland
from .agent import CoordinationAgent


class GpuCoschedulePolicy:
    """Trigger the kernel owner's VM on every kernel completion."""

    def __init__(
        self,
        sim: Simulator,
        gpu: GPUIsland,
        agent: CoordinationAgent,
        vm_entities: dict[str, EntityId],
        tracer: Optional[Tracer] = None,
    ):
        """``vm_entities`` maps GPU context names to the x86 entities to
        boost; ``agent`` must be the GPU-side agent toward x86."""
        self.sim = sim
        self.agent = agent
        self.vm_entities = vm_entities
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._minter = SpanMinter.shared(self.tracer)
        self.triggers_sent = 0
        #: Triggers withheld while the peer island was DOWN; the CPU side
        #: then relies on its scheduler's own wakeup latency (the paper's
        #: uncoordinated pathology, accepted as the degraded mode).
        self.triggers_suppressed = 0
        gpu.device.on_kernel_complete = self._on_kernel_complete

    def _on_kernel_complete(self, context_name: str, launch) -> None:
        entity = self.vm_entities.get(context_name)
        if entity is None:
            return
        if not self.agent.peer_available:
            self.triggers_suppressed += 1
            if self.tracer.wants("degraded-suppressed"):
                self.tracer.emit(
                    "cosched", "degraded-suppressed", context=context_name,
                )
            return
        self.triggers_sent += 1
        span = None
        if self._minter.active:
            span = self._minter.mint(
                "cosched", entity=str(entity), reason="kernel-complete",
                op="trigger", context=context_name,
            )
        self.agent.send_trigger(entity, reason="kernel-complete", span=span)
        self.tracer.emit("cosched", "trigger", context=context_name)
