"""Coordination message formats.

The paper distills two standard mechanisms (§3.3):

* **Tune** — "messages containing a process or VM identifier and a +/-
  numerical value can be used to request resource adjustment that, at the
  remote island, will get translated into corresponding weight or priority
  adjustments, depending on the remote island's scheduling algorithm".
* **Trigger** — "an immediate notification, like an interrupt between two
  islands ... request resource allocation for a particular process in a
  remote island as soon as possible".

Registration messages implement §2.3's boot-time entity registration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs import SpanContext
from ..platform import EntityId


@dataclass(frozen=True, slots=True)
class TuneMessage:
    """Fine-grained resource adjustment request for a remote entity."""

    entity: EntityId
    delta: int
    #: Free-form reason tag, kept for tracing/debugging (e.g. the request
    #: type that motivated the adjustment).
    reason: str = ""
    #: Send timestamp (simulation ns), stamped by the sending agent so the
    #: receive side can measure end-to-end application latency. -1 when
    #: constructed outside an agent.
    sent_at: int = -1
    #: Causal span of the policy decision that produced this message,
    #: propagated by value to the receiving island (None when tracing is
    #: off — the zero-cost default).
    span: Optional[SpanContext] = None
    #: Sender's fault-domain epoch. Stays 0 for the whole run unless the
    #: fault layer is armed and the sender recovered from a peer-DOWN
    #: (each recovery bumps it); receivers discard frames from older
    #: epochs so stale retransmissions cannot undo a replayed snapshot.
    epoch: int = 0

    def __repr__(self) -> str:
        sign = "+" if self.delta >= 0 else ""
        return f"Tune({self.entity}, {sign}{self.delta}, {self.reason!r})"


@dataclass(frozen=True, slots=True)
class TriggerMessage:
    """Immediate, preemptive resource-allocation request."""

    entity: EntityId
    reason: str = ""
    #: Send timestamp (simulation ns); see :class:`TuneMessage.sent_at`.
    sent_at: int = -1
    #: Causal span of the policy decision; see :class:`TuneMessage.span`.
    span: Optional[SpanContext] = None
    #: Sender's fault-domain epoch; see :class:`TuneMessage.epoch`.
    epoch: int = 0

    def __repr__(self) -> str:
        return f"Trigger({self.entity}, {self.reason!r})"


@dataclass(frozen=True, slots=True)
class RegisterMessage:
    """Announce that an entity was deployed on some island."""

    entity: EntityId

    def __repr__(self) -> str:
        return f"Register({self.entity})"


CoordinationMessage = TuneMessage | TriggerMessage | RegisterMessage
