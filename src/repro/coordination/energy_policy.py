"""Coordinated energy/QoS governor across DVFS, LLC ways and bandwidth.

The paper argues (§1, §5) that per-resource managers make conflicting
decisions: a DVFS governor sees a stalled, "busy" core and keeps the
frequency high, while the actual bottleneck is the cache partition or
the memory pipe — resources a frequency step cannot buy. This policy is
the coordinated alternative in executable form, following the CBP /
Nejat et al. line of work: each epoch it reads the platform's QoS
telemetry (windowed p95 response times) and the power meter, then
greedily searches the joint (dvfs-level × llc-ways × bw-share ×
prefetch-throttle) space:

* **QoS first** — while any VM's slack is negative, pick the single
  move with the best *predicted* stall reduction for the worst VM
  (way transfer from the slackest donor, bandwidth-share boost,
  prefetch re-aim), using the memory model's ``predict_stall``; only
  when no partition move is predicted to help does it spend frequency.
* **Then energy** — once every VM has comfortable slack, step the DVFS
  ladder down one level (the cubic-dynamic-power lever) and let the
  next window confirm; with thin slack it first tries partition moves
  that *create* the headroom a downward step needs. Memory stalls are
  frequency-invariant in wall time, so slack bought by partitioning is
  exactly what a frequency step can convert into energy.

Every actuation goes through the island's typed knob layer
(:meth:`~repro.platform.Island.apply_tune`), so the whole search is
visible in the actuation audit, span-stamped when the observatory is
armed. The policy never emits zero-delta Tunes: an epoch with nothing
to do leaves no audit footprint and burns no Dom0 cycles.

The two ablations the experiment compares against are the same loop
with one arm tied behind its back: ``dvfs-only`` may only move the
ladder (the classic per-resource governor), ``partition-only`` may only
move ways/bandwidth/prefetch and is pinned at nominal frequency.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..obs import SpanMinter
from ..platform import EntityId
from ..sim import Simulator, Tracer, ms
from ..x86 import DVFS_LADDER, X86Island

#: Governor modes: the coordinated policy and its two ablations.
ENERGY_QOS_MODES = ("coordinated", "dvfs-only", "partition-only")

#: Predicted stall-factor reduction below which a partition move is not
#: worth its audit entry (the zero-benefit guard of the greedy search).
MIN_PREDICTED_GAIN = 0.01


@dataclass(frozen=True, slots=True)
class QosTarget:
    """One VM's service-level objective: windowed p95 under ``p95_ms``."""

    vm: str
    p95_ms: float

    def __post_init__(self) -> None:
        if self.p95_ms <= 0:
            raise ValueError(f"p95_ms must be positive, got {self.p95_ms}")


@dataclass(slots=True)
class _Move:
    """One candidate actuation of the greedy search."""

    kind: str  #: ``ways`` | ``bw`` | ``prefetch``
    gain: float  #: predicted stall-factor reduction for the focus VM
    tunes: list  #: [(EntityId, delta), ...] realising the move
    reason: str


class EnergyQosGovernor:
    """Epoch-driven joint DVFS + cache + bandwidth energy/QoS control."""

    def __init__(
        self,
        sim: Simulator,
        x86: X86Island,
        meter,
        qos_source,
        targets: list[QosTarget],
        mode: str = "coordinated",
        period: int = ms(500),
        headroom: float = 0.3,
        dvfs_guard: float = 0.12,
        dvfs_cooldown_epochs: int = 4,
        dvfs_confirm_epochs: int = 24,
        bw_step: int = 64,
        prefetch_step: int = 50,
        tracer: Optional[Tracer] = None,
    ):
        """``meter`` needs ``instantaneous()`` (a PowerMeter; duck-typed so
        the coordination layer stays import-free of :mod:`repro.power`);
        ``qos_source`` needs ``p95_ms(vm) -> float | None`` (a
        :class:`~repro.metrics.energyqos.WindowedQosSource`).

        ``headroom`` is the relative slack below which a VM is considered
        tight (partition moves are sought for it, and it refuses to donate
        LLC ways). A downward DVFS step is taken only when every VM's p95
        — averaged over the last ``dvfs_confirm_epochs`` epochs, so one
        optimistic window snapshot cannot trip it — scaled by the speed
        ratio of the step, would still clear its target by ``dvfs_guard``.
        ``dvfs_cooldown_epochs`` holds further DVFS steps until the QoS
        window has refilled with post-step samples — the hysteresis that
        stops the ladder thrashing around one level.
        """
        if mode not in ENERGY_QOS_MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {ENERGY_QOS_MODES}")
        if not targets:
            raise ValueError("at least one QosTarget is required")
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= headroom < 1.0:
            raise ValueError(f"headroom must be in [0,1), got {headroom}")
        self.sim = sim
        self.x86 = x86
        self.meter = meter
        self.qos_source = qos_source
        self.targets = list(targets)
        self.mode = mode
        self.period = period
        self.headroom = headroom
        self.dvfs_guard = dvfs_guard
        self.bw_step = bw_step
        self.prefetch_step = prefetch_step
        self.tracer = tracer or Tracer(sim, enabled=False)
        self._minter = SpanMinter.shared(self.tracer)
        self.dvfs_entity = EntityId(x86.name, "dvfs")
        self._dvfs_hold_until = 0
        self._dvfs_cooldown = dvfs_cooldown_epochs * period
        #: Anti-flap latch: the lowest ladder index economizing may visit.
        #: A violation-driven step up burns the level it left — the linear
        #: p95 prediction under-estimates queueing blow-up near
        #: saturation, so a level that violated once is not retried.
        self._dvfs_floor = 0
        #: Per-VM epoch p95 history feeding the down-step confirmation.
        self._confirm_epochs = dvfs_confirm_epochs
        self._recent_p95: dict[str, deque] = {
            t.vm: deque(maxlen=dvfs_confirm_epochs) for t in self.targets
        }
        # Counters: the experiment's actuation scoreboard.
        self.epochs = 0
        self.violation_epochs = 0
        self.dvfs_steps_down = 0
        self.dvfs_steps_up = 0
        self.way_moves = 0
        self.bw_moves = 0
        self.prefetch_moves = 0
        #: DVFS steps withheld because another actor moved the ladder at
        #: the same instant (a cap governor sharing the meter's clock).
        self.dvfs_deferred = 0
        # Stays a generator loop (not a PeriodicTask): same-instant race
        # arbitration with other actors depends on the first epoch arming
        # at t=0 process startup, in spawn order — see TestRaceGuard.
        sim.spawn(self._loop(), name=f"energy-governor-{mode}")

    # -- plumbing -----------------------------------------------------------

    @property
    def _memory(self):
        return getattr(self.x86, "memory_system", None)

    @property
    def _partitions_enabled(self) -> bool:
        return self.mode != "dvfs-only" and self._memory is not None

    @property
    def _dvfs_enabled(self) -> bool:
        return self.mode != "partition-only"

    def _dvfs_raced(self) -> bool:
        """Whether another actor already stepped the ladder this instant
        (same audit-based guard as the power-cap governors' actuator)."""
        last = self.x86.knobs.last_actuation(self.dvfs_entity)
        return (
            last is not None
            and last.time == self.sim.now
            and last.op == "tune"
            and bool(last.requested_delta)
        )

    def _tune(self, entity: EntityId, delta: int, reason: str) -> None:
        """One audited, span-stamped actuation (never zero-delta)."""
        span = None
        if self._minter.active:
            span = self._minter.mint(
                "energy-policy", entity=str(entity), reason=reason, op="tune",
            )
        self.x86.apply_tune(entity, delta, span=span)

    def _read_p95s(self) -> dict[str, float]:
        """Each targeted VM's current windowed p95, feeding the epoch's
        slack view and the down-step confirmation history. VMs whose
        window is still empty are omitted — no data, no move."""
        out: dict[str, float] = {}
        for target in self.targets:
            p95 = self.qos_source.p95_ms(target.vm)
            if p95 is None:
                continue
            out[target.vm] = p95
            self._recent_p95[target.vm].append(p95)
        return out

    # -- the epoch ----------------------------------------------------------

    def _loop(self):
        while True:
            yield self.sim.timeout(self.period)
            self._epoch()

    def _epoch(self) -> None:
        self.epochs += 1
        p95s = self._read_p95s()
        if not p95s:
            return
        by_vm = {t.vm: t.p95_ms for t in self.targets}
        slacks = {vm: (by_vm[vm] - p95) / by_vm[vm] for vm, p95 in p95s.items()}
        worst_vm = min(slacks, key=lambda vm: slacks[vm])
        worst = slacks[worst_vm]
        if worst < 0.0:
            self.violation_epochs += 1
            self._recover(worst_vm, slacks)
        else:
            self._economize(worst_vm, worst, slacks)
        if self.tracer.wants("energy-govern"):
            self.tracer.emit(
                "energy-policy", "energy-govern", mode=self.mode,
                worst_vm=worst_vm, worst_slack=round(worst, 4),
                x86_w=round(self.meter.instantaneous().x86_w, 2),
                dvfs=self.x86.knobs.get(self.dvfs_entity).read(),
            )

    # -- QoS recovery -------------------------------------------------------

    def _recover(self, vm: str, slacks: dict[str, float]) -> None:
        """Fix the violating VM: best partition move first, then frequency."""
        move = self._best_move(vm, slacks) if self._partitions_enabled else None
        if move is not None:
            self._apply_move(move)
            return
        if self._dvfs_enabled:
            index = int(self.x86.knobs.get(self.dvfs_entity).read())
            if index < len(DVFS_LADDER) - 1:
                if self._dvfs_raced():
                    self.dvfs_deferred += 1
                    return
                self._tune(self.dvfs_entity, +1, reason=f"qos:{vm}")
                self.dvfs_steps_up += 1
                self._dvfs_floor = max(self._dvfs_floor, index + 1)
                self._after_dvfs_move()

    # -- energy economizing -------------------------------------------------

    def _after_dvfs_move(self) -> None:
        """Arm the cooldown and restart p95 confirmation from scratch:
        pre-move samples must not bias the next down-step decision."""
        self._dvfs_hold_until = self.sim.now + self._dvfs_cooldown
        for history in self._recent_p95.values():
            history.clear()

    def _downstep_safe(self) -> bool:
        """Whether one downward DVFS step is predicted to keep every
        target met: each VM's p95 — averaged over the confirmation
        history, so a single optimistic window cannot trip the check —
        scaled by the full speed ratio of the step (an over-estimate:
        memory stalls don't stretch), must still clear its target with
        ``dvfs_guard`` to spare. Thin history vetoes, as does the
        anti-flap floor."""
        index = int(self.x86.knobs.get(self.dvfs_entity).read())
        if index <= self._dvfs_floor:
            return False
        scale = DVFS_LADDER[index] / DVFS_LADDER[index - 1]
        for target in self.targets:
            history = self._recent_p95[target.vm]
            if len(history) < self._confirm_epochs:
                return False
            mean_p95 = sum(history) / len(history)
            if mean_p95 * scale > target.p95_ms * (1.0 - self.dvfs_guard):
                return False
        return True

    def _economize(self, worst_vm: str, worst: float, slacks: dict[str, float]) -> None:
        """All targets met: convert surplus slack into energy."""
        if (
            self._dvfs_enabled
            and self.sim.now >= self._dvfs_hold_until
            and self._downstep_safe()
        ):
            if self._dvfs_raced():
                self.dvfs_deferred += 1
                return
            self._tune(self.dvfs_entity, -1, reason="economize")
            self.dvfs_steps_down += 1
            self._after_dvfs_move()
            return
        if self._partitions_enabled and worst < self.headroom:
            # Thin slack: a partition move that de-stalls the tightest VM
            # is what creates the headroom the next downward step needs.
            move = self._best_move(worst_vm, slacks)
            if move is not None:
                self._apply_move(move)

    # -- the greedy move generator -----------------------------------------

    def _best_move(self, vm: str, slacks: dict[str, float]) -> Optional[_Move]:
        """The single best predicted move for ``vm``, or None.

        Candidates are scored by the memory model's hypothetical stall
        factor (``predict_stall``) — the model-guided part of the search;
        a move must beat :data:`MIN_PREDICTED_GAIN` to be worth emitting.
        """
        memory = self._memory
        if memory is None or vm not in memory.managed():
            return None
        current = memory.predict_stall(vm)
        candidates: list[_Move] = []

        # 1. One more LLC way — free, or taken from the slackest donor.
        ways = memory.ways(vm)
        if ways < memory.params.total_ways:
            gain = current - memory.predict_stall(vm, ways=ways + 1)
            if memory.free_ways > 0:
                candidates.append(_Move(
                    kind="ways", gain=gain,
                    tunes=[(EntityId(self.x86.name, f"llc:{vm}"), +1)],
                    reason=f"way:{vm}",
                ))
            else:
                donor = self._way_donor(vm, slacks)
                if donor is not None:
                    # The donor's way frees first so the grow is never
                    # clamped against a fully-allocated cache.
                    candidates.append(_Move(
                        kind="ways", gain=gain,
                        tunes=[
                            (EntityId(self.x86.name, f"llc:{donor}"), -1),
                            (EntityId(self.x86.name, f"llc:{vm}"), +1),
                        ],
                        reason=f"way:{donor}->{vm}",
                    ))

        # 2. A bigger bandwidth share (helps only when the pipe squeezes).
        share = memory.bw_share(vm)
        gain = current - memory.predict_stall(vm, bw_share=share + self.bw_step)
        candidates.append(_Move(
            kind="bw", gain=gain,
            tunes=[(EntityId(self.x86.name, f"bw:{vm}"), +self.bw_step)],
            reason=f"bw:{vm}",
        ))

        # 3. Re-aim the prefetcher: more aggressive when the pipe can feed
        # it, throttled when its own waste traffic is the squeeze.
        throttle = memory.prefetch_throttle(vm)
        for delta in (-self.prefetch_step, +self.prefetch_step):
            hypothetical = max(0, min(100, throttle + delta))
            if hypothetical == throttle:
                continue
            gain = current - memory.predict_stall(vm, prefetch_throttle=hypothetical)
            candidates.append(_Move(
                kind="prefetch", gain=gain,
                tunes=[(EntityId(self.x86.name, f"prefetch:{vm}"), delta)],
                reason=f"prefetch:{vm}",
            ))

        best = max(candidates, key=lambda move: move.gain, default=None)
        if best is None or best.gain < MIN_PREDICTED_GAIN:
            return None
        return best

    def _way_donor(self, vm: str, slacks: dict[str, float]) -> Optional[str]:
        """The managed VM best able to give up one LLC way.

        Donors must hold more than one way and not themselves be tight:
        either comfortably over the headroom threshold, or untargeted
        (best-effort domains donate unconditionally).
        """
        memory = self._memory
        best_name: Optional[str] = None
        best_slack = -1.0
        for name in memory.managed():
            if name == vm or memory.ways(name) <= 1:
                continue
            slack = slacks.get(name)
            if slack is None:
                slack = 1.0  # untargeted: free to shrink
            elif slack < self.headroom:
                continue
            if slack > best_slack:
                best_name, best_slack = name, slack
        return best_name

    def _apply_move(self, move: _Move) -> None:
        for entity, delta in move.tunes:
            self._tune(entity, delta, reason=move.reason)
        if move.kind == "ways":
            self.way_moves += 1
        elif move.kind == "bw":
            self.bw_moves += 1
        else:
            self.prefetch_moves += 1

    # -- reporting ----------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Actuation counters (the experiment's per-mode scoreboard)."""
        return {
            "epochs": self.epochs,
            "violation_epochs": self.violation_epochs,
            "dvfs_steps_down": self.dvfs_steps_down,
            "dvfs_steps_up": self.dvfs_steps_up,
            "way_moves": self.way_moves,
            "bw_moves": self.bw_moves,
            "prefetch_moves": self.prefetch_moves,
            "dvfs_deferred": self.dvfs_deferred,
        }
