"""Command-line entry point: regenerate paper artefacts.

Usage::

    python -m repro list                 # what can be run
    python -m repro rubis                # Tables 1-2, Figures 2/4/5
    python -m repro mplayer-qos          # Figure 6
    python -m repro buffer-trigger       # Figure 7 + Table 3
    python -m repro power-cap [--cap W]  # extension experiment
    python -m repro all                  # everything (several minutes)

Options::

    --seed N        experiment seed (default 1)
    --duration S    measured seconds per RUBiS arm (default 80)
    --cap W         platform power cap for power-cap (default 48)
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    render_figure2,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_power_cap,
    render_table1,
    render_table2,
    render_table3,
    run_power_cap,
    run_qos_ladder,
    run_rubis_pair,
    run_trigger_pair,
)
from .sim import seconds


def _emit(*artefacts: str) -> None:
    for artefact in artefacts:
        print()
        print(artefact)


def cmd_rubis(args) -> None:
    pair = run_rubis_pair(duration=seconds(args.duration), seed=args.seed)
    _emit(
        render_figure2(pair),
        render_figure4(pair),
        render_table1(pair),
        render_table2(pair),
        render_figure5(pair),
    )


def cmd_mplayer_qos(args) -> None:
    _emit(render_figure6(run_qos_ladder(seed=args.seed)))


def cmd_buffer_trigger(args) -> None:
    pair = run_trigger_pair(seed=args.seed)
    _emit(render_figure7(pair), render_table3(pair))


def cmd_power_cap(args) -> None:
    _emit(render_power_cap(run_power_cap(cap_w=args.cap, seed=args.seed)))


COMMANDS = {
    "rubis": cmd_rubis,
    "mplayer-qos": cmd_mplayer_qos,
    "buffer-trigger": cmd_buffer_trigger,
    "power-cap": cmd_power_cap,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("command", choices=[*COMMANDS, "all", "list"])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=80.0,
                        help="measured seconds per RUBiS arm")
    parser.add_argument("--cap", type=float, default=48.0,
                        help="platform power cap in watts")
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in COMMANDS:
            print(name)
        return 0
    if args.command == "all":
        for name, command in COMMANDS.items():
            print(f"\n### {name} " + "#" * max(0, 60 - len(name)))
            command(args)
        return 0
    COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
