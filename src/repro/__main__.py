"""Command-line entry point: regenerate paper artefacts.

Usage::

    python -m repro list                 # what can be run
    python -m repro rubis                # Tables 1-2, Figures 2/4/5
    python -m repro mplayer-qos          # Figure 6
    python -m repro buffer-trigger       # Figure 7 + Table 3
    python -m repro power-cap [--cap W]  # extension experiment
    python -m repro energyqos            # energy/QoS co-optimization
    python -m repro chaos                # robustness blackout sweep
    python -m repro scalability          # K-island mesh coordination sweep
    python -m repro fabric               # control-plane fabric sweep (K<=128)
    python -m repro fabric-sharded       # sharded fabric execution (K<=2048)
    python -m repro shard-chaos          # self-healing shard chaos drills
    python -m repro trace [--out F]      # traced run -> chrome://tracing JSON
    python -m repro all                  # everything (several minutes)

Options::

    --seed N            experiment seed (default 1)
    --shards N          shard count for fabric-sharded (default 4)
    --duration S        measured seconds per RUBiS arm (default 80)
    --cap W             platform power cap for power-cap (default 48)
    --out F             Chrome-trace output path for trace (default trace.json)
    --trace-duration S  measured seconds of the traced arm (default 12)

Commands are looked up in the experiment registry
(:mod:`repro.experiments.registry`); adding an experiment is one
``@experiment(...)`` decoration, and ``list``/``all`` derive from it.
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    all_experiments,
    experiment,
    get,
    names,
    render_chaos,
    render_control_loops,
    render_fabric,
    render_fabric_sharded,
    render_scalability,
    render_shard_chaos,
    render_figure2,
    render_figure4,
    render_figure5,
    render_figure6,
    render_energy_qos,
    render_figure7,
    render_power_cap,
    render_table1,
    render_table2,
    render_table3,
    run_chaos_sweep,
    run_energy_qos,
    run_fabric,
    run_fabric_sharded,
    run_scalability,
    run_shard_chaos,
    run_power_cap,
    run_qos_ladder,
    run_rubis_pair,
    run_traced_rubis,
    run_trigger_pair,
)
from .sim import seconds


def _emit(*artefacts: str) -> None:
    for artefact in artefacts:
        print()
        print(artefact)


@experiment("rubis", help="Tables 1-2, Figures 2/4/5 (paired RUBiS run)",
            artefacts=("figure2", "figure4", "table1", "table2", "figure5"))
def cmd_rubis(args) -> None:
    pair = run_rubis_pair(duration=seconds(args.duration), seed=args.seed)
    _emit(
        render_figure2(pair),
        render_figure4(pair),
        render_table1(pair),
        render_table2(pair),
        render_figure5(pair),
    )


@experiment("mplayer-qos", help="Figure 6 (stream-QoS weight ladder)",
            artefacts=("figure6",))
def cmd_mplayer_qos(args) -> None:
    _emit(render_figure6(run_qos_ladder(seed=args.seed)))


@experiment("buffer-trigger", help="Figure 7 + Table 3 (buffer-monitor triggers)",
            artefacts=("figure7", "table3"))
def cmd_buffer_trigger(args) -> None:
    pair = run_trigger_pair(seed=args.seed)
    _emit(render_figure7(pair), render_table3(pair))


@experiment("power-cap", help="Extension: coordinated platform power capping",
            artefacts=("power-cap",))
def cmd_power_cap(args) -> None:
    _emit(render_power_cap(run_power_cap(cap_w=args.cap, seed=args.seed)))


@experiment("energyqos", help="Extension: energy/QoS co-optimization across "
            "DVFS, LLC ways and memory bandwidth (vs both ablations)",
            artefacts=("energyqos",))
def cmd_energyqos(args) -> None:
    _emit(render_energy_qos(run_energy_qos(seed=args.seed)))


@experiment("chaos", help="Robustness: blackout sweep — detection, fallback, "
            "recovery, reconvergence, lease hygiene",
            artefacts=("chaos",), in_all=False)
def cmd_chaos(args) -> None:
    _emit(render_chaos(run_chaos_sweep(seed=args.seed)))


@experiment("scalability", help="Extension: coordination scalability — "
            "K-island meshes, centralized vs distributed message concentration",
            artefacts=("scalability",), in_all=False)
def cmd_scalability(args) -> None:
    _emit(render_scalability(run_scalability()))


@experiment("fabric", help="Extension: control-plane fabrics at scale — "
            "central/hierarchical/gossip directories, K in {8,32,128}, "
            "concentration + post-partition discovery convergence",
            artefacts=("fabric",), in_all=False)
def cmd_fabric(args) -> None:
    _emit(render_fabric(run_fabric(seed=args.seed)))


@experiment("fabric-sharded", help="Extension: sharded fabric execution — "
            "conservative multi-process time-sync over cluster boundaries, "
            "K in {128,512,2048}, bit-identical to single-process",
            artefacts=("fabric-sharded",), in_all=False)
def cmd_fabric_sharded(args) -> None:
    _emit(render_fabric_sharded(run_fabric_sharded(
        shards=args.shards, seed=args.seed,
    )))


@experiment("shard-chaos", help="Robustness: self-healing sharded execution — "
            "scripted worker kills/hangs, journal-replay recovery, "
            "K in {128,512}, bit-identical to the undisturbed reference",
            artefacts=("shard-chaos",), in_all=False)
def cmd_shard_chaos(args) -> None:
    _emit(render_shard_chaos(run_shard_chaos(
        shards=args.shards, seed=args.seed,
    )))


@experiment("trace", help="Causally-traced run -> chrome://tracing JSON + "
            "control-loop latency breakdown",
            artefacts=("control-loops",), in_all=False)
def cmd_trace(args) -> None:
    result = run_traced_rubis(
        duration=seconds(args.trace_duration),
        seed=args.seed,
        destination=args.out,
    )
    _emit(render_control_loops(result))


#: Back-compat view of the registry (older tooling imported this table).
COMMANDS = {exp.name: exp.run for exp in all_experiments()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("command", choices=[*names(), "all", "list"])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--shards", type=int, default=4,
                        help="shard count for fabric-sharded")
    parser.add_argument("--duration", type=float, default=80.0,
                        help="measured seconds per RUBiS arm")
    parser.add_argument("--cap", type=float, default=48.0,
                        help="platform power cap in watts")
    parser.add_argument("--out", default="trace.json",
                        help="Chrome-trace output path (trace command)")
    parser.add_argument("--trace-duration", type=float, default=12.0,
                        help="measured seconds of the traced arm")
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in names())
        for exp in all_experiments():
            print(f"{exp.name:<{width}}  {exp.help}")
        return 0
    if args.command == "all":
        for exp in all_experiments():
            if not exp.in_all:
                continue
            print(f"\n### {exp.name} " + "#" * max(0, 60 - len(exp.name)))
            exp.run(args)
        return 0
    get(args.command).run(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
