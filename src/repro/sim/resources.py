"""Counted resources with FIFO grant order.

:class:`Resource` models a pool of identical servers (e.g. DMA engines, bus
slots). Processes ``yield resource.request()`` and must ``release`` the
returned request when done; a ``with``-style helper is provided through
:meth:`Request.__enter__` for straight-line process code.
"""

from __future__ import annotations

from collections import deque

from .core import Event, Simulator


class Request(Event):
    """A pending or granted claim on one unit of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim, name=f"request:{resource.name}")
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request (no-op if already granted)."""
        self.resource._cancel(self)


class Resource:
    """``capacity`` interchangeable units, granted first-come first-served."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name or "resource"
        self.capacity = capacity
        self._users: list[Request] = []
        self._waiting: deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of granted units."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests still waiting for a grant."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim one unit; the returned event fires when granted."""
        req = Request(self)
        self._waiting.append(req)
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a granted unit to the pool."""
        try:
            self._users.remove(request)
        except ValueError:
            raise ValueError(f"{request!r} does not hold {self.name}") from None
        self._grant()

    def _cancel(self, request: Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass  # already granted or already cancelled

    def _grant(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            req = self._waiting.popleft()
            self._users.append(req)
            req.succeed(req)
