"""Processes: generator coroutines driven by the event loop.

A process is a Python generator that ``yield``s :class:`~repro.sim.core.Event`
objects. Yielding suspends the process until the event fires; the event's
value is sent back into the generator (or its exception thrown, for failed
events). A :class:`Process` is itself an event that fires when the generator
returns, so processes can ``yield other_process`` to join on it.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .core import Event, Simulator
from .errors import Interrupt, SimulationError


class Process(Event):
    """Wraps a generator and steps it each time its awaited event fires."""

    __slots__ = ("_generator", "_target")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator; did you forget to call it?")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        #: The event this process is currently waiting on (None when ready
        #: to start or already finished).
        self._target: Optional[Event] = None

        # Kick the process off via a zero-delay event so that spawning from
        # inside another process does not recursively execute it.
        start = Event(sim, name=f"start:{self.name}")
        start._ok = True
        start._value = None
        sim._schedule(start, delay=0)
        start.callbacks.append(self._resume)

    # -- introspection ---------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on."""
        return self._target

    # -- control ---------------------------------------------------------

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        The process stops waiting for its current target (the target itself
        is unaffected and may fire later with no one listening) and instead
        receives the exception. Interrupting a finished process is an error;
        interrupting a process that has not started yet is allowed.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        interrupt_event = Event(self.sim, name=f"interrupt:{self.name}")
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        self.sim._schedule(interrupt_event, delay=0)
        interrupt_event.callbacks.append(self._resume)

    # -- engine ----------------------------------------------------------

    def _resume(self, event: Event) -> None:
        # Stale wakeup: an interrupt arrived while we waited on a target, or
        # the target fired after an interrupt already moved us on.
        if self.triggered:
            return
        if self._target is not None and event is not self._target:
            # Only interrupt events may barge in on a waiting process; any
            # other mismatched wakeup is a stale target firing after an
            # interrupt already moved the process on.
            if event.ok or not isinstance(event._value, Interrupt):
                return
        self._target = None

        previous, self.sim._active_process = self.sim._active_process, self
        try:
            if event.ok:
                next_target = self._generator.send(event.value)
            else:
                event.defused()
                next_target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.sim._active_process = previous
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = previous
            self.fail(exc)
            return
        self.sim._active_process = previous

        if not isinstance(next_target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {next_target!r}, which is not an Event"
            )
            self._generator.close()
            self.fail(error)
            return
        if next_target.sim is not self.sim:
            self._generator.close()
            self.fail(SimulationError("yielded an event belonging to a different simulator"))
            return

        self._target = next_target
        if next_target.callbacks is None:
            # Already processed: resume on the next loop iteration.
            ready = Event(self.sim, name="ready")
            ready._ok = next_target.ok
            ready._value = next_target._value
            if not next_target.ok:
                ready._defused = True
            self._target = ready
            self.sim._schedule(ready, delay=0)
            ready.callbacks.append(self._resume)
        else:
            next_target.callbacks.append(self._resume)

    def __repr__(self) -> str:
        status = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {status}>"


def sleep(sim: Simulator, delay: int) -> Event:
    """Readable alias for ``sim.timeout(delay)`` inside process code."""
    return sim.timeout(delay)
