"""Processes: generator coroutines driven by the event loop.

A process is a Python generator that ``yield``s :class:`~repro.sim.core.Event`
objects. Yielding suspends the process until the event fires; the event's
value is sent back into the generator (or its exception thrown, for failed
events). A :class:`Process` is itself an event that fires when the generator
returns, so processes can ``yield other_process`` to join on it.

The fast path: a process may also ``yield`` a plain non-negative ``int`` —
a pure delay. Instead of allocating a :class:`~repro.sim.core.Timeout` (and
its callback list) per sleep, the process parks a reusable
:class:`~repro.sim.core._DelayWakeup` token directly on the simulator's
timer wheel and resumes with ``None``, exactly as ``yield sim.timeout(n)``
would. (For *fixed-period* loops with no other yields, prefer
:class:`~repro.sim.core.PeriodicTask`, which also skips the generator
resume per tick.) The
two spellings are observationally identical — same event ordering, same
sequence-number consumption, same interrupt semantics — which
``tests/sim/test_fastpath.py`` asserts pairwise; the fast path is simply
allocation-free. Booleans are rejected (``yield True`` is almost certainly
a bug, not a 1 ns delay).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .core import Event, Simulator, Timeout, _DelayWakeup
from .errors import Interrupt, SimulationError


class Process(Event):
    """Wraps a generator and steps it each time its awaited event fires."""

    __slots__ = ("_generator", "_target", "_in_fast_delay", "_delay_gen", "_delay_wakeup")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator; did you forget to call it?")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        #: The event this process is currently waiting on (None when ready
        #: to start, sleeping on the heap via the fast path, or finished).
        self._target: Optional[Event] = None
        #: True while the process sleeps on a heap-parked delay token.
        self._in_fast_delay = False
        #: Bumped whenever a fast delay is armed or abandoned; a token
        #: whose ``gen`` no longer matches is stale and is ignored.
        self._delay_gen = 0
        #: The process's reusable wakeup token while it is *not* in the
        #: heap (None while parked there, or before first use).
        self._delay_wakeup: Optional[_DelayWakeup] = None

        # Kick the process off via a zero-delay event so that spawning from
        # inside another process does not recursively execute it.
        start = Event(sim, name=f"start:{self.name}")
        start._ok = True
        start._value = None
        sim._schedule(start, delay=0)
        start.callbacks.append(self._resume)

    # -- introspection ---------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on.

        None while the process sleeps on a fast integer delay (there is no
        event object then) as well as before start and after finish.
        """
        return self._target

    # -- control ---------------------------------------------------------

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        The process stops waiting for its current target (the target itself
        is unaffected and may fire later with no one listening) and instead
        receives the exception. Interrupting a finished process is an error;
        interrupting a process that has not started yet is allowed.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        interrupt_event = Event(self.sim, name=f"interrupt:{self.name}")
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        self.sim._schedule(interrupt_event, delay=0)
        interrupt_event.callbacks.append(self._resume)

    # -- engine ----------------------------------------------------------

    def _resume(self, event: Event) -> None:
        # Stale wakeup: an interrupt arrived while we waited on a target, or
        # the target fired after an interrupt already moved us on.
        if self.triggered:
            return
        if self._in_fast_delay or (self._target is not None and event is not self._target):
            # Only interrupt events may barge in on a waiting process; any
            # other mismatched wakeup is a stale event firing after an
            # interrupt already moved the process on.
            if event.ok or not isinstance(event._value, Interrupt):
                return
            if self._in_fast_delay:
                # Abandon the heap-parked token; it is ignored when it pops.
                self._in_fast_delay = False
                self._delay_gen += 1
        self._target = None

        if event.ok:
            self._step(self._generator.send, event.value)
        else:
            event.defused()
            self._step(self._generator.throw, event.value)

    def _delay_fired(self, wakeup: _DelayWakeup) -> None:
        """A heap-parked delay token popped (called by ``Simulator.step``)."""
        if not self._in_fast_delay or wakeup.gen != self._delay_gen:
            # Stale: an interrupt moved the process on. Recycle the token
            # unless a fresh one already took the slot.
            if self._delay_wakeup is None:
                self._delay_wakeup = wakeup
            return
        self._in_fast_delay = False
        value = wakeup.value
        if self._delay_wakeup is None:
            wakeup.value = None
            self._delay_wakeup = wakeup
        self._step(self._generator.send, value)

    def _step(self, advance, argument: Any) -> None:
        """Advance the generator one yield and act on what it yields."""
        previous, self.sim._active_process = self.sim._active_process, self
        try:
            next_target = advance(argument)
        except StopIteration as stop:
            self.sim._active_process = previous
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = previous
            self.fail(exc)
            return
        self.sim._active_process = previous

        if type(next_target) is int:
            if next_target < 0:
                self._generator.close()
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded negative delay {next_target}"
                    )
                )
                return
            if self.sim._fastpath:
                self._arm_delay(next_target, None)
                return
            # Determinism-audit mode: take the allocating Timeout path.
            next_target = Timeout(self.sim, next_target)

        if not isinstance(next_target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {next_target!r}, which is not an Event"
            )
            self._generator.close()
            self.fail(error)
            return
        if next_target.sim is not self.sim:
            self._generator.close()
            self.fail(SimulationError("yielded an event belonging to a different simulator"))
            return

        if next_target.callbacks is None:
            # Already processed: resume on the next loop iteration.
            if next_target.ok and self.sim._fastpath:
                # Same zero-delay hop, minus the throwaway Event.
                self._arm_delay(0, next_target._value)
                return
            ready = Event(self.sim, name="ready")
            ready._ok = next_target.ok
            ready._value = next_target._value
            if not next_target.ok:
                ready._defused = True
            self._target = ready
            self.sim._schedule(ready, delay=0)
            ready.callbacks.append(self._resume)
        else:
            self._target = next_target
            next_target.callbacks.append(self._resume)

    def _arm_delay(self, delay: int, value: Any) -> None:
        """Park the process on the heap for ``delay`` ticks (fast path)."""
        wakeup = self._delay_wakeup
        if wakeup is None:
            # Our token is still in the heap from an abandoned delay; a
            # fresh one keeps the stale entry unambiguously dead.
            wakeup = _DelayWakeup(self)
        else:
            self._delay_wakeup = None
        self._delay_gen += 1
        wakeup.gen = self._delay_gen
        wakeup.value = value
        self._in_fast_delay = True
        self.sim._schedule_wakeup(wakeup, delay)

    def __repr__(self) -> str:
        status = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {status}>"


def sleep(sim: Simulator, delay: int) -> Event:
    """Readable alias for ``sim.timeout(delay)`` inside process code."""
    return sim.timeout(delay)
