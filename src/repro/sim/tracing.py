"""Lightweight structured tracing.

Components publish ``(time, source, kind, payload)`` records to a
:class:`Tracer`; sinks subscribe by kind (or to everything). Metrics
collectors are just sinks, so measurement never reaches into component
internals.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from .core import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time: int
    source: str
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)


TraceSink = Callable[[TraceRecord], None]


class Tracer:
    """Pub/sub hub for trace records, keyed by record ``kind``."""

    def __init__(self, sim: Simulator, enabled: bool = True):
        self.sim = sim
        self._enabled = enabled
        self._sinks_by_kind: dict[str, list[TraceSink]] = {}
        self._global_sinks: list[TraceSink] = []
        #: kind -> would emit() reach anyone; invalidated on subscribe and
        #: on enabled toggles.
        self._wants_cache: dict[str, bool] = {}

    @property
    def enabled(self) -> bool:
        """Master switch; assigning it invalidates the ``wants`` cache."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = value
        self._wants_cache.clear()

    def subscribe(self, sink: TraceSink, kinds: Optional[Iterable[str]] = None) -> None:
        """Attach ``sink``; with ``kinds=None`` it receives every record."""
        self._wants_cache.clear()
        if kinds is None:
            self._global_sinks.append(sink)
            return
        for kind in kinds:
            self._sinks_by_kind.setdefault(kind, []).append(sink)

    def wants(self, kind: str) -> bool:
        """True if an ``emit`` of ``kind`` would reach any sink (memoized).

        Hot paths guard their ``emit`` calls with this so that, with nobody
        subscribed, they skip even the keyword-argument marshalling of the
        payload — ``emit`` itself cannot avoid that cost.
        """
        try:
            return self._wants_cache[kind]
        except KeyError:
            result = self._enabled and bool(
                self._sinks_by_kind.get(kind) or self._global_sinks
            )
            self._wants_cache[kind] = result
            return result

    def emit(self, source: str, kind: str, **payload: Any) -> None:
        """Publish a record stamped with the current simulation time."""
        if not self._enabled:
            return
        sinks = self._sinks_by_kind.get(kind)
        if not sinks and not self._global_sinks:
            return  # nobody listening: skip record construction entirely
        record = TraceRecord(time=self.sim.now, source=source, kind=kind, payload=payload)
        if sinks:
            for sink in sinks:
                sink(record)
        for sink in self._global_sinks:
            sink(record)


class TraceLog:
    """A sink that simply accumulates records (useful in tests)."""

    def __init__(self):
        self.records: list[TraceRecord] = []

    def __call__(self, record: TraceRecord) -> None:
        self.records.append(record)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All collected records with the given kind."""
        return [r for r in self.records if r.kind == kind]

    def count_by_kind(self) -> dict[str, int]:
        """Record counts keyed by kind (handy for channel accounting)."""
        return dict(Counter(record.kind for record in self.records))

    def clear(self) -> None:
        """Drop all accumulated records (for long-running sinks)."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
