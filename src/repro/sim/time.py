"""Virtual-time units.

The kernel clock is an integer count of **nanoseconds**. Integer time keeps
runs deterministic (no float drift when summing many small latencies) and
makes event ordering total. These helpers convert human-friendly units into
clock ticks and back; use them instead of bare numeric literals.
"""

from __future__ import annotations

#: Number of clock ticks (nanoseconds) in one microsecond.
NS_PER_US = 1_000
#: Number of clock ticks in one millisecond.
NS_PER_MS = 1_000_000
#: Number of clock ticks in one second.
NS_PER_S = 1_000_000_000


def ns(value: float) -> int:
    """Nanoseconds -> clock ticks (identity, rounded to int)."""
    return round(value)


def us(value: float) -> int:
    """Microseconds -> clock ticks."""
    return round(value * NS_PER_US)


def ms(value: float) -> int:
    """Milliseconds -> clock ticks."""
    return round(value * NS_PER_MS)


def seconds(value: float) -> int:
    """Seconds -> clock ticks."""
    return round(value * NS_PER_S)


def to_us(ticks: int) -> float:
    """Clock ticks -> microseconds (float)."""
    return ticks / NS_PER_US


def to_ms(ticks: int) -> float:
    """Clock ticks -> milliseconds (float)."""
    return ticks / NS_PER_MS


def to_seconds(ticks: int) -> float:
    """Clock ticks -> seconds (float)."""
    return ticks / NS_PER_S
