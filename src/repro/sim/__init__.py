"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES engine: integer-nanosecond clock,
one-shot events, coroutine processes, waitable stores, counted resources,
named random streams, and structured tracing. Everything else in
:mod:`repro` is built on these primitives.
"""

from .core import Condition, Event, PeriodicTask, Simulator, Timeout, all_of, any_of
from .errors import (
    EventAlreadyTriggeredError,
    Interrupt,
    SchedulingInPastError,
    SimulationError,
    StopSimulation,
)
from .process import Process
from .queues import PriorityItem, PriorityStore, Store, StoreGet, StorePut
from .resources import Request, Resource
from .rng import RandomStream, RandomStreams
from .time import (
    NS_PER_MS,
    NS_PER_S,
    NS_PER_US,
    ms,
    ns,
    seconds,
    to_ms,
    to_seconds,
    to_us,
    us,
)
from .tracing import TraceLog, TraceRecord, Tracer

__all__ = [
    "Condition",
    "Event",
    "EventAlreadyTriggeredError",
    "Interrupt",
    "NS_PER_MS",
    "NS_PER_S",
    "NS_PER_US",
    "PeriodicTask",
    "PriorityItem",
    "PriorityStore",
    "Process",
    "RandomStream",
    "RandomStreams",
    "Request",
    "Resource",
    "SchedulingInPastError",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
    "TraceLog",
    "TraceRecord",
    "Tracer",
    "all_of",
    "any_of",
    "ms",
    "ns",
    "seconds",
    "to_ms",
    "to_seconds",
    "to_us",
    "us",
]
