"""Waitable queues (stores) for inter-process communication.

A :class:`Store` is an unbounded-or-bounded FIFO of arbitrary items.
``put``/``get`` return events, so processes block naturally when the store is
full/empty. :class:`PriorityStore` dequeues the smallest item first, which
the IXP model uses for weighted packet-queue service.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Generic, Optional, TypeVar

from .core import Event, Simulator

T = TypeVar("T")


class StorePut(Event):
    """Event returned by :meth:`Store.put`; fires once the item is stored."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim, name="store-put")
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; fires with the item as value."""

    __slots__ = ()


class Store(Generic[T]):
    """FIFO item store with optional capacity.

    The queue discipline is strict FIFO on both sides: puts complete in the
    order issued, and blocked getters are served in the order they asked.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name or "store"
        self.capacity = capacity
        self.items: deque[T] = deque()
        self._putters: deque[StorePut] = deque()
        self._getters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        """True when a further ``put`` would block."""
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: T) -> StorePut:
        """Deposit ``item``; the returned event fires when there is room."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Request one item; the returned event fires with the item."""
        event = StoreGet(self.sim, name=f"get:{self.name}")
        self._getters.append(event)
        self._dispatch()
        return event

    def try_put(self, item: T) -> bool:
        """Non-blocking put: False (and no side effect) when full."""
        if self.is_full:
            return False
        self.put(item)
        return True

    def try_get(self) -> Optional[T]:
        """Non-blocking get: None when nothing is immediately available."""
        if not self.items:
            return None
        # Serve through the normal path so queued putters are admitted.
        item = self._pop_item()
        self._dispatch()
        return item

    def peek(self) -> Optional[T]:
        """The item ``get`` would return next, without removing it."""
        return self.items[0] if self.items else None

    def cancel_get(self, event: StoreGet) -> bool:
        """Withdraw a pending get; False if it already fired (or is foreign)."""
        try:
            self._getters.remove(event)
            return True
        except ValueError:
            return False

    # -- internals --------------------------------------------------------

    def _store_item(self, item: T) -> None:
        self.items.append(item)

    def _pop_item(self) -> T:
        return self.items.popleft()

    def _dispatch(self) -> None:
        """Admit pending puts while room, satisfy pending gets while items."""
        progressed = True
        while progressed:
            progressed = False
            while self._putters and not self.is_full:
                put = self._putters.popleft()
                self._store_item(put.item)
                put.succeed()
                progressed = True
            while self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self._pop_item())
                progressed = True


class PriorityStore(Store[T]):
    """Store that always yields the smallest item (heap order).

    Items must be comparable; wrap them in :class:`PriorityItem` when the
    payload itself is not.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        super().__init__(sim, capacity=capacity, name=name or "priority-store")
        self._heap: list[T] = []
        self.items = self._heap  # type: ignore[assignment] # len()/truthiness only

    def _store_item(self, item: T) -> None:
        heapq.heappush(self._heap, item)

    def _pop_item(self) -> T:
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[T]:
        return self._heap[0] if self._heap else None


class PriorityItem:
    """Orderable wrapper pairing a sort key with an arbitrary payload."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any):
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PriorityItem) and self.priority == other.priority

    def __repr__(self) -> str:
        return f"PriorityItem({self.priority!r}, {self.item!r})"
