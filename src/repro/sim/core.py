"""Discrete-event simulation core: events and the simulator loop.

The design follows the classic event-graph formulation. An :class:`Event` is
a one-shot occurrence that processes (see :mod:`repro.sim.process`) can wait
on by ``yield``-ing it. The :class:`Simulator` owns the virtual clock and a
binary heap of pending events, and runs them in ``(time, sequence)`` order so
simultaneous events fire in the order they were scheduled — which, combined
with integer time and seeded RNG streams, makes every run bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from .errors import (
    EventAlreadyTriggeredError,
    SchedulingInPastError,
    StopSimulation,
)

#: Sentinel stored in ``Event._value`` before the event has a value.
_PENDING = object()


class _DelayWakeup:
    """Heap token for the integer-delay fast path (``yield <int>``).

    When a process yields a plain ``int`` it sleeps directly on the
    simulator heap: no :class:`Timeout`, no :class:`Event`, just this token.
    Each process owns one token and reuses it for consecutive delays, so a
    steady-state delay loop allocates nothing per sleep. ``gen`` guards
    against stale firings: an interrupt that moves the process on bumps the
    process's generation counter, and the abandoned in-heap token is
    ignored (and recycled) when it finally pops.
    """

    __slots__ = ("process", "gen", "value")

    #: Read by :meth:`Simulator.step`'s cancelled-entry skip; wakeup tokens
    #: are never cancelled (abandonment is handled via ``gen``).
    _cancelled = False

    def __init__(self, process):
        self.process = process
        self.gen = -1
        #: Value sent into the generator on wakeup (non-None only when the
        #: token stands in for an already-processed target's zero-delay
        #: resume).
        self.value = None


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    Life cycle: *pending* -> *triggered* (scheduled to fire) -> *processed*
    (callbacks ran). ``succeed``/``fail`` trigger the event immediately
    (zero-delay, but still through the queue so ordering stays consistent).
    """

    __slots__ = (
        "sim",
        "name",
        "callbacks",
        "_value",
        "_ok",
        "_scheduled",
        "_defused",
        "_cancelled",
    )

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        #: Callables invoked with this event when it fires. ``None`` after
        #: the event has been processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._scheduled = False
        self._defused = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or the exception, for failed events)."""
        if self._value is _PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` as its payload."""
        if self._value is not _PENDING:
            raise EventAlreadyTriggeredError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay=0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters have ``exception`` raised."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise EventAlreadyTriggeredError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay=0)
        return self

    def defused(self) -> None:
        """Mark a failed event as handled so it does not crash the run.

        The simulator re-raises the exception of any failed event that fires
        with nobody having handled it. Condition events and processes defuse
        the failures they absorb.
        """
        self._defused = True

    # -- composition -----------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.sim, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.sim, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` ticks after it is created."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None, name: str = ""):
        if delay < 0:
            raise SchedulingInPastError(f"negative timeout delay {delay}")
        super().__init__(sim, name=name or f"timeout({delay})")
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay)

    def cancel(self) -> bool:
        """Cancel the timer so its callbacks never run.

        Returns False (and is a no-op) if the timer already fired. The heap
        entry is deleted lazily: it stays queued until its time arrives and
        is then skipped, and the simulator compacts the heap when cancelled
        entries pile up. Cancel only timers you own exclusively — a process
        ``yield``-ing a cancelled timeout would sleep forever.
        """
        if self.callbacks is None:
            return False
        if not self._cancelled:
            self._cancelled = True
            self.sim._note_cancelled()
        return True


class Condition(Event):
    """Composite event: fires when ``evaluate`` says enough children fired.

    Used through the ``&`` / ``|`` operators on events or the
    :func:`all_of` / :func:`any_of` helpers. The condition's value is a dict
    mapping each *triggered* child event to its value.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        sim: "Simulator",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(sim, name="condition")
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.sim is not sim:
                raise ValueError("cannot mix events from different simulators")

        if not self._events:
            # Vacuous truth: a condition over no events fires immediately.
            self.succeed({})
            return

        # Immediately check already-processed children, then subscribe.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict[Event, Any]:
        return {e: e.value for e in self._events if e.triggered}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event.ok:
            event.defused()
            self.fail(event.value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Evaluator: fire once every child has fired."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """Evaluator: fire as soon as one child fires."""
        return count > 0 or not events


def all_of(sim: "Simulator", events: Iterable[Event]) -> Condition:
    """Event that fires when *all* of ``events`` have fired."""
    return Condition(sim, Condition.all_events, events)


def any_of(sim: "Simulator", events: Iterable[Event]) -> Condition:
    """Event that fires when *any* of ``events`` has fired."""
    return Condition(sim, Condition.any_events, events)


class Simulator:
    """The event loop: virtual clock plus a time-ordered event heap.

    Typical use::

        sim = Simulator()
        sim.spawn(my_process(sim))
        sim.run(until=seconds(10))
    """

    def __init__(self, start_time: int = 0, fastpath: bool = True):
        self._now: int = start_time
        #: Heap entries are ``(time, seq, Event | _DelayWakeup)``; the seq
        #: tie-breaker is unique, so the payload is never compared.
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = 0  # tie-breaker giving FIFO order to simultaneous events
        self._active_process = None  # set by Process while it executes
        #: When False, ``yield <int>`` routes through a real Timeout (the
        #: allocating path) instead of a heap token. The two paths are
        #: observationally identical; the switch exists so determinism
        #: audits can run the same scenario both ways and compare.
        self._fastpath = fastpath
        self._cancelled_pending = 0  # cancelled timers still in the heap

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> int:
        """Current virtual time in clock ticks (nanoseconds)."""
        return self._now

    # -- event constructors ----------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh, untriggered event (a 'promise')."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ticks from now."""
        return Timeout(self, delay, value=value)

    def spawn(self, generator, name: str = "") -> "Process":
        """Start a new process from a generator; see :class:`Process`."""
        from .process import Process  # noqa: PLC0415 — local import to avoid a cycle

        return Process(self, generator, name=name)

    @property
    def active_process(self):
        """The process currently executing, if the loop is inside one."""
        return self._active_process

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: int) -> None:
        if delay < 0:
            raise SchedulingInPastError(f"cannot schedule {event!r} {-delay} ticks in the past")
        if event._scheduled:
            return
        event._scheduled = True
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def _schedule_wakeup(self, wakeup: _DelayWakeup, delay: int) -> None:
        """Queue a process's integer-delay wakeup token (fast path)."""
        heapq.heappush(self._heap, (self._now + delay, self._seq, wakeup))
        self._seq += 1

    def _note_cancelled(self) -> None:
        """Track a lazily-deleted timer; compact the heap when they pile up.

        Rebuilding drops every cancelled entry in one pass; ``heapify`` on
        the surviving ``(time, seq)``-keyed tuples is deterministic because
        pops always come out in ascending key order regardless of the
        heap's internal layout.
        """
        self._cancelled_pending += 1
        if self._cancelled_pending >= 64 and self._cancelled_pending * 2 > len(self._heap):
            self._heap = [entry for entry in self._heap if not entry[2]._cancelled]
            heapq.heapify(self._heap)
            self._cancelled_pending = 0

    def call_at(self, when: int, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute time ``when``; returns the timer event."""
        if when < self._now:
            raise SchedulingInPastError(f"call_at({when}) but now={self._now}")
        timer = self.timeout(when - self._now)
        timer.callbacks.append(lambda _ev: fn())
        return timer

    def call_in(self, delay: int, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` ticks; returns the timer event."""
        timer = self.timeout(delay)
        timer.callbacks.append(lambda _ev: fn())
        return timer

    # -- running ---------------------------------------------------------

    def peek(self) -> Optional[int]:
        """Time of the next pending event, or None if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> None:
        """Process exactly one heap entry (advance the clock to it).

        A cancelled timer or a delay-wakeup token still counts as one
        step; cancelled entries are skipped without running callbacks.
        """
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        if event._cancelled:
            self._cancelled_pending -= 1
            return
        if event.__class__ is _DelayWakeup:
            event.process._delay_fired(event)
            return
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event nobody handled: surface the error loudly.
            raise event._value

    def run(self, until: Optional[int] = None) -> None:
        """Run until the heap drains or the clock would pass ``until``.

        When ``until`` is given the clock is left at exactly ``until`` even
        if no event falls on that instant, so back-to-back ``run`` calls
        compose predictably.
        """
        try:
            if until is None:
                while self._heap:
                    self.step()
            else:
                if until < self._now:
                    raise SchedulingInPastError(f"run(until={until}) but now={self._now}")
                while self._heap and self._heap[0][0] <= until:
                    self.step()
                self._now = until
        except StopSimulation:
            pass

    def stop(self) -> None:
        """Abort :meth:`run` from inside a callback or process."""
        raise StopSimulation()
