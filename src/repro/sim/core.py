"""Discrete-event simulation core: events and the simulator loop.

The design follows the classic event-graph formulation. An :class:`Event` is
a one-shot occurrence that processes (see :mod:`repro.sim.process`) can wait
on by ``yield``-ing it. The :class:`Simulator` owns the virtual clock and
runs pending entries in ``(time, sequence)`` order so simultaneous events
fire in the order they were scheduled — which, combined with integer time
and seeded RNG streams, makes every run bit-reproducible.

Internally the schedule is a hashed timer wheel (Varghese & Lauck) backed
by a binary heap. Near-future entries land in fixed-width wheel slots with
an O(1) append; far-future entries overflow to the heap and cascade into
the drain buffer as the wheel's cursor reaches their slot. Because every
entry carries its exact ``(time, seq)`` key and a whole slot is heapified
before anything in it fires, the pop order is *identical* to a single
global heap — the wheel is purely a cost optimisation, asserted bit-for-bit
by the paired-run tests. ``Simulator(fastpath=False)`` bypasses the wheel
entirely (every entry routes through the classic heap) so determinism
audits can run the same scenario both ways and compare.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from .errors import (
    EventAlreadyTriggeredError,
    SchedulingInPastError,
    StopSimulation,
)

#: Sentinel stored in ``Event._value`` before the event has a value.
_PENDING = object()

#: Timer-wheel geometry: each slot spans ``2**_WHEEL_SHIFT`` ns (~65.5 µs);
#: ``_WHEEL_SLOTS`` slots give a ~33.6 ms horizon — wide enough that every
#: hot fixed-period event in the platform (10 ms scheduler ticks, 30 ms
#: accounting, µs-scale polls, ms-scale heartbeats) schedules with one
#: list append. Entries beyond the horizon overflow to the heap and
#: cascade in as the cursor advances.
_WHEEL_SHIFT = 16
_WHEEL_SLOTS = 512
_WHEEL_MASK = _WHEEL_SLOTS - 1


class _DelayWakeup:
    """Heap token for the integer-delay fast path (``yield <int>``).

    When a process yields a plain ``int`` it sleeps directly on the
    simulator heap: no :class:`Timeout`, no :class:`Event`, just this token.
    Each process owns one token and reuses it for consecutive delays, so a
    steady-state delay loop allocates nothing per sleep. ``gen`` guards
    against stale firings: an interrupt that moves the process on bumps the
    process's generation counter, and the abandoned in-heap token is
    ignored (and recycled) when it finally pops.
    """

    __slots__ = ("process", "gen", "value")

    #: Read by :meth:`Simulator.step`'s cancelled-entry skip; wakeup tokens
    #: are never cancelled (abandonment is handled via ``gen``).
    _cancelled = False

    def __init__(self, process):
        self.process = process
        self.gen = -1
        #: Value sent into the generator on wakeup (non-None only when the
        #: token stands in for an already-processed target's zero-delay
        #: resume).
        self.value = None


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    Life cycle: *pending* -> *triggered* (scheduled to fire) -> *processed*
    (callbacks ran). ``succeed``/``fail`` trigger the event immediately
    (zero-delay, but still through the queue so ordering stays consistent).
    """

    __slots__ = (
        "sim",
        "name",
        "callbacks",
        "_value",
        "_ok",
        "_scheduled",
        "_defused",
        "_cancelled",
    )

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        #: Callables invoked with this event when it fires. ``None`` after
        #: the event has been processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._scheduled = False
        self._defused = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or the exception, for failed events)."""
        if self._value is _PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` as its payload."""
        if self._value is not _PENDING:
            raise EventAlreadyTriggeredError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay=0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters have ``exception`` raised."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise EventAlreadyTriggeredError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay=0)
        return self

    def defused(self) -> None:
        """Mark a failed event as handled so it does not crash the run.

        The simulator re-raises the exception of any failed event that fires
        with nobody having handled it. Condition events and processes defuse
        the failures they absorb.
        """
        self._defused = True

    # -- composition -----------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.sim, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.sim, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` ticks after it is created."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None, name: str = ""):
        if delay < 0:
            raise SchedulingInPastError(f"negative timeout delay {delay}")
        super().__init__(sim, name=name or f"timeout({delay})")
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay)

    def cancel(self) -> bool:
        """Cancel the timer so its callbacks never run.

        Returns False (and is a no-op) if the timer already fired. The heap
        entry is deleted lazily: it stays queued until its time arrives and
        is then skipped, and the simulator compacts the heap when cancelled
        entries pile up. Cancel only timers you own exclusively — a process
        ``yield``-ing a cancelled timeout would sleep forever.
        """
        if self.callbacks is None:
            return False
        if not self._cancelled:
            self._cancelled = True
            self.sim._note_cancelled()
        return True


class Condition(Event):
    """Composite event: fires when ``evaluate`` says enough children fired.

    Used through the ``&`` / ``|`` operators on events or the
    :func:`all_of` / :func:`any_of` helpers. The condition's value is a dict
    mapping each *triggered* child event to its value.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        sim: "Simulator",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(sim, name="condition")
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.sim is not sim:
                raise ValueError("cannot mix events from different simulators")

        if not self._events:
            # Vacuous truth: a condition over no events fires immediately.
            self.succeed({})
            return

        # Immediately check already-processed children, then subscribe.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict[Event, Any]:
        return {e: e.value for e in self._events if e.triggered}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event.ok:
            event.defused()
            self.fail(event.value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Evaluator: fire once every child has fired."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """Evaluator: fire as soon as one child fires."""
        return count > 0 or not events


def all_of(sim: "Simulator", events: Iterable[Event]) -> Condition:
    """Event that fires when *all* of ``events`` have fired."""
    return Condition(sim, Condition.all_events, events)


def any_of(sim: "Simulator", events: Iterable[Event]) -> Condition:
    """Event that fires when *any* of ``events`` has fired."""
    return Condition(sim, Condition.any_events, events)


class Simulator:
    """The event loop: virtual clock plus a time-ordered event heap.

    Typical use::

        sim = Simulator()
        sim.spawn(my_process(sim))
        sim.run(until=seconds(10))
    """

    def __init__(self, start_time: int = 0, fastpath: bool = True):
        self._now: int = start_time
        #: Schedule entries are ``(time, seq, Event | _DelayWakeup |
        #: PeriodicTask)``; the seq tie-breaker is unique, so the payload
        #: is never compared. They live in one of three containers:
        #: ``_ready`` (a heap of entries due in the slot the wheel cursor
        #: is draining), the wheel ``_slots`` (plain lists, one per slot,
        #: for entries within the horizon), and ``_heap`` (far-future
        #: overflow, cascaded into ``_ready`` as the cursor advances).
        self._ready: list[tuple[int, int, Any]] = []
        self._slots: list[list[tuple[int, int, Any]]] = [[] for _ in range(_WHEEL_SLOTS)]
        self._wheel_count = 0  # live entries currently parked in wheel slots
        #: Absolute slot index the wheel has drained up to: entries for
        #: slots <= cursor go straight to ``_ready``.
        self._cursor = start_time >> _WHEEL_SHIFT
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = 0  # tie-breaker giving FIFO order to simultaneous events
        self._active_process = None  # set by Process while it executes
        #: When False, ``yield <int>`` routes through a real Timeout (the
        #: allocating path) instead of a heap token, PeriodicTask re-arms
        #: through real Timeouts, and every entry bypasses the wheel into
        #: the classic heap. The two paths are observationally identical;
        #: the switch exists so determinism audits can run the same
        #: scenario both ways and compare.
        self._fastpath = fastpath
        self._cancelled_pending = 0  # cancelled entries still queued somewhere

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> int:
        """Current virtual time in clock ticks (nanoseconds)."""
        return self._now

    @property
    def events(self) -> int:
        """Total schedule entries filed so far — the monotone kernel
        event counter (and the throughput numerator of every events/sec
        figure). Public so harness code never reads ``_seq`` directly;
        deterministic for a given scenario in both kernel modes, because
        every push consumes exactly one sequence number."""
        return self._seq

    # -- event constructors ----------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh, untriggered event (a 'promise')."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ticks from now."""
        return Timeout(self, delay, value=value)

    def spawn(self, generator, name: str = "") -> "Process":
        """Start a new process from a generator; see :class:`Process`."""
        from .process import Process  # noqa: PLC0415 — local import to avoid a cycle

        return Process(self, generator, name=name)

    @property
    def active_process(self):
        """The process currently executing, if the loop is inside one."""
        return self._active_process

    # -- scheduling ------------------------------------------------------

    def _push(self, time: int, obj: Any) -> None:
        """File one schedule entry into the wheel, drain buffer, or heap.

        Every push consumes one sequence number regardless of which
        container the entry lands in, so ordering decisions are identical
        across wheel/heap modes.
        """
        entry = (time, self._seq, obj)
        self._seq += 1
        slot = time >> _WHEEL_SHIFT
        offset = slot - self._cursor
        if offset <= 0:
            # Due within the slot currently being drained (or the past,
            # after a run(until=...) clock jump): must interleave with the
            # drain buffer, whose span the cursor already covers — this
            # holds in *both* kernel modes; the audit knob only opts out
            # of the O(1) wheel slots below.
            heapq.heappush(self._ready, entry)
        elif self._fastpath and offset < _WHEEL_SLOTS:
            self._slots[slot & _WHEEL_MASK].append(entry)
            self._wheel_count += 1
        else:
            heapq.heappush(self._heap, entry)

    def _schedule(self, event: Event, delay: int) -> None:
        if delay < 0:
            raise SchedulingInPastError(f"cannot schedule {event!r} {-delay} ticks in the past")
        if event._scheduled:
            return
        event._scheduled = True
        self._push(self._now + delay, event)

    def _schedule_wakeup(self, wakeup: _DelayWakeup, delay: int) -> None:
        """Queue a process's integer-delay wakeup token (fast path)."""
        self._push(self._now + delay, wakeup)

    def _refill(self) -> None:
        """Advance the wheel cursor to the next occupied slot and move that
        slot's entries (wheel bucket plus any overflow entries due within
        it) into the empty drain buffer.

        Only called when ``_ready`` is empty and something is pending. The
        resulting buffer holds *every* pending entry with time below the
        new slot boundary, so popping its minimum is the global minimum —
        ordering is exactly what one big heap would produce.
        """
        heap = self._heap
        ready = self._ready
        cursor = self._cursor
        if self._wheel_count:
            slots = self._slots
            s = cursor + 1
            while not slots[s & _WHEEL_MASK]:
                s += 1
            if heap and (heap[0][0] >> _WHEEL_SHIFT) < s:
                # The overflow heap owns an earlier slot; drain that span
                # first (the wheel bucket stays parked for a later pass).
                s = heap[0][0] >> _WHEEL_SHIFT
                if s < cursor:
                    s = cursor
            else:
                bucket = slots[s & _WHEEL_MASK]
                ready.extend(bucket)
                self._wheel_count -= len(bucket)
                bucket.clear()
        else:
            s = heap[0][0] >> _WHEEL_SHIFT
            if s < cursor:
                s = cursor
        boundary = (s + 1) << _WHEEL_SHIFT
        while heap and heap[0][0] < boundary:
            ready.append(heapq.heappop(heap))
        self._cursor = s
        heapq.heapify(ready)

    def _pop_live(self) -> Optional[tuple[int, int, Any]]:
        """Pop the next non-cancelled entry, or None when nothing remains.

        Cancelled entries are discarded as they surface (decrementing the
        lazy-deletion debt) without advancing the clock.
        """
        ready = self._ready
        while True:
            if not ready:
                if not (self._wheel_count or self._heap):
                    return None
                self._refill()
                continue
            entry = heapq.heappop(ready)
            if entry[2]._cancelled:
                self._cancelled_pending -= 1
                continue
            return entry

    def _process(self, when: int, event: Any) -> None:
        """Advance the clock to one live entry and fire it."""
        self._now = when
        cls = event.__class__
        if cls is _DelayWakeup:
            event.process._delay_fired(event)
            return
        if cls is PeriodicTask:
            event._fired()
            return
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event nobody handled: surface the error loudly.
            raise event._value

    def _note_cancelled(self) -> None:
        """Track a lazily-deleted entry; compact when the debt piles up.

        Compaction filters every container (drain buffer, wheel slots,
        overflow heap) in one pass; ``heapify`` on the surviving
        ``(time, seq)``-keyed tuples is deterministic because pops always
        come out in ascending key order regardless of the heap's internal
        layout. The debt counter is decremented by exactly the number of
        entries dropped — not reset to zero — so it stays consistent with
        the skip-pop decrements in :meth:`peek`/:meth:`step` no matter how
        the two interleave.
        """
        self._cancelled_pending += 1
        if self._cancelled_pending < 64:
            return
        queued = len(self._ready) + self._wheel_count + len(self._heap)
        if self._cancelled_pending * 2 <= queued:
            return
        dropped = 0
        for heap in (self._ready, self._heap):
            live = [entry for entry in heap if not entry[2]._cancelled]
            if len(live) != len(heap):
                dropped += len(heap) - len(live)
                heap[:] = live
                heapq.heapify(heap)
        if self._wheel_count:
            for bucket in self._slots:
                if bucket:
                    live = [entry for entry in bucket if not entry[2]._cancelled]
                    if len(live) != len(bucket):
                        dropped += len(bucket) - len(live)
                        self._wheel_count -= len(bucket) - len(live)
                        bucket[:] = live
        self._cancelled_pending -= dropped

    def call_at(self, when: int, fn: Callable[[], None]) -> Timeout:
        """Run ``fn()`` at absolute time ``when``.

        Returns the underlying :class:`Timeout`, a cancellable handle:
        ``handle.cancel()`` guarantees ``fn`` never runs.
        """
        if when < self._now:
            raise SchedulingInPastError(f"call_at({when}) but now={self._now}")
        timer = self.timeout(when - self._now)
        timer.callbacks.append(lambda _ev: fn())
        return timer

    def call_in(self, delay: int, fn: Callable[[], None]) -> Timeout:
        """Run ``fn()`` after ``delay`` ticks.

        Returns the underlying :class:`Timeout`, a cancellable handle:
        ``handle.cancel()`` guarantees ``fn`` never runs.
        """
        timer = self.timeout(delay)
        timer.callbacks.append(lambda _ev: fn())
        return timer

    def periodic(self, period: int, fn: Callable[[], None], name: str = "",
                 first_delay: Optional[int] = None) -> "PeriodicTask":
        """A :class:`PeriodicTask` running ``fn()`` every ``period`` ticks."""
        return PeriodicTask(self, period, fn, name=name, first_delay=first_delay)

    # -- running ---------------------------------------------------------

    def peek(self) -> Optional[int]:
        """Time of the next *live* pending entry, or None if nothing is
        queued.

        Lazily-cancelled timers at the head of the schedule are skip-popped
        (they no longer mask the real next event, and ``run(until=...)``
        does not burn steps on them).
        """
        while True:
            ready = self._ready
            if ready:
                entry = ready[0]
                if entry[2]._cancelled:
                    heapq.heappop(ready)
                    self._cancelled_pending -= 1
                    continue
                return entry[0]
            if self._wheel_count or self._heap:
                self._refill()
                continue
            return None

    def step(self) -> None:
        """Process exactly one live entry (advance the clock to it).

        Lazily-cancelled entries surfacing at the head are discarded
        without running callbacks or advancing the clock; with nothing
        live left, ``step`` is a no-op.
        """
        entry = self._pop_live()
        if entry is not None:
            self._process(entry[0], entry[2])

    def run(self, until: Optional[int] = None) -> None:
        """Run until the schedule drains or the clock would pass ``until``.

        When ``until`` is given the clock is left at exactly ``until`` even
        if no event falls on that instant, so back-to-back ``run`` calls
        compose predictably.
        """
        try:
            if until is None:
                while True:
                    entry = self._pop_live()
                    if entry is None:
                        break
                    self._process(entry[0], entry[2])
            else:
                if until < self._now:
                    raise SchedulingInPastError(f"run(until={until}) but now={self._now}")
                ready = self._ready
                pop = heapq.heappop
                while True:
                    if not ready:
                        if not (self._wheel_count or self._heap):
                            break
                        self._refill()
                        continue
                    head = ready[0]
                    if head[2]._cancelled:
                        pop(ready)
                        self._cancelled_pending -= 1
                        continue
                    if head[0] > until:
                        break
                    pop(ready)
                    self._process(head[0], head[2])
                self._now = until
        except StopSimulation:
            pass

    def run_until(self, until: int) -> None:
        """Advance to ``until`` processing only events *strictly before* it.

        The conservative-window primitive of the sharded execution mode
        (:mod:`repro.shard`): a shard granted the window ``[now, until)``
        runs every local event below the window edge, leaves the clock
        parked exactly at ``until``, and hands control back so boundary
        messages due *at* ``until`` can be applied before any local event
        scheduled for that same instant fires. Contrast :meth:`run`, whose
        ``until`` is inclusive. Events at exactly ``until`` stay queued
        and fire on the next ``run``/``run_until``/``step`` call — with
        the clock already at ``until``, anything applied in between
        (message deliveries, drains) is ordered *before* them.
        """
        if until < self._now:
            raise SchedulingInPastError(f"run_until({until}) but now={self._now}")
        try:
            ready = self._ready
            pop = heapq.heappop
            while True:
                if not ready:
                    if not (self._wheel_count or self._heap):
                        break
                    self._refill()
                    continue
                head = ready[0]
                if head[2]._cancelled:
                    pop(ready)
                    self._cancelled_pending -= 1
                    continue
                if head[0] >= until:
                    break
                pop(ready)
                self._process(head[0], head[2])
            self._now = until
        except StopSimulation:
            pass

    def stop(self) -> None:
        """Abort :meth:`run` from inside a callback or process."""
        raise StopSimulation()


class PeriodicTask:
    """A fixed-period callback tick with zero per-tick allocation.

    The periodic idiom ``while True: yield period; do_work()`` pays, per
    tick, for a generator resume, a yield-type dispatch, and delay-token
    bookkeeping. A ``PeriodicTask`` is the same tick as a bare schedule
    entry: the task object *is* its own wheel token, the kernel calls
    ``fn()`` directly when it pops, and re-arming is one O(1) wheel append
    (no ``Event``, no ``Timeout``, no callback list, no generator frame —
    the only per-tick allocation is the small ``(time, seq, task)`` entry
    tuple, which CPython serves from its freelist).

    Semantics match the generator spelling exactly: the first tick fires
    ``period`` ticks after construction (or ``first_delay``, when given),
    ticks interleave with simultaneous events in ``(time, seq)`` FIFO
    order, and exactly one sequence number is consumed per tick — so under
    ``Simulator(fastpath=False)``, where re-arming routes through real
    :class:`Timeout` events on the classic heap, runs are bit-identical.

    ``cancel()`` stops the task permanently; the in-flight entry is
    lazily discarded like a cancelled timer. Exceptions raised by ``fn``
    propagate out of :meth:`Simulator.run` (the task stays armed, exactly
    as a crashing callback would leave its follow-up timer armed).

    Do not subclass: the kernel dispatches on the exact class.
    """

    __slots__ = ("sim", "period", "fn", "name", "ticks", "_cancelled", "_timer")

    def __init__(
        self,
        sim: Simulator,
        period: int,
        fn: Callable[[], None],
        name: str = "",
        first_delay: Optional[int] = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        delay = period if first_delay is None else first_delay
        if delay < 0:
            raise SchedulingInPastError(f"negative first_delay {delay}")
        self.sim = sim
        self.period = period
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "periodic")
        #: Number of times ``fn`` has been invoked.
        self.ticks = 0
        self._cancelled = False
        #: The pending audit-mode Timeout (None on the fast path, where
        #: the task itself is the schedule entry).
        self._timer: Optional[Timeout] = None
        self._arm(delay)

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    def _arm(self, delay: int) -> None:
        sim = self.sim
        if sim._fastpath:
            self._timer = None
            sim._push(sim._now + delay, self)
        else:
            # Audit path: a real Timeout through the classic heap. One
            # sequence number per tick, same as the token push above.
            timer = Timeout(sim, delay)
            timer.callbacks.append(self._audit_fired)
            self._timer = timer

    def _fired(self) -> None:
        """Fast-path tick (called by the kernel when the token pops).

        Re-arms *before* running ``fn`` so the sequence numbers any work
        inside ``fn`` consumes come after the next tick's — mirroring the
        audit path, where the follow-up Timeout is created first too.
        The fast re-arm is ``Simulator._push`` inlined: this is the
        hottest call site in periodic-dominated runs, and the extra
        frame shows up at fleet scale.
        """
        self.ticks += 1
        sim = self.sim
        if sim._fastpath:
            time = sim._now + self.period
            entry = (time, sim._seq, self)
            sim._seq += 1
            slot = time >> _WHEEL_SHIFT
            offset = slot - sim._cursor
            if offset <= 0:
                heapq.heappush(sim._ready, entry)
            elif offset < _WHEEL_SLOTS:
                sim._slots[slot & _WHEEL_MASK].append(entry)
                sim._wheel_count += 1
            else:
                heapq.heappush(sim._heap, entry)
        else:
            self._arm(self.period)
        self.fn()

    def _audit_fired(self, _event: Event) -> None:
        if self._cancelled:
            return
        self.ticks += 1
        self._arm(self.period)
        self.fn()

    def cancel(self) -> bool:
        """Stop the task; ``fn`` never runs again. Idempotent."""
        if self._cancelled:
            return True
        self._cancelled = True
        timer = self._timer
        if timer is not None:
            self._timer = None
            timer.cancel()
        else:
            # The in-flight token entry is discarded lazily when it pops.
            self.sim._note_cancelled()
        return True

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "armed"
        return f"<PeriodicTask {self.name!r} period={self.period} {state} ticks={self.ticks}>"
