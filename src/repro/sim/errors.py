"""Exception types raised by the simulation kernel.

The kernel keeps its error vocabulary small and explicit: scheduling in the
past, misuse of events, and process interruption each get their own type so
callers can handle them separately.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class SchedulingInPastError(SimulationError):
    """An event was scheduled at a time earlier than the current clock."""


class EventAlreadyTriggeredError(SimulationError):
    """``succeed``/``fail`` was called on an event that already fired."""


class StopSimulation(Exception):
    """Internal control-flow signal used by :meth:`Simulator.stop`.

    Not a :class:`SimulationError`: it is never an error condition, it simply
    unwinds the event loop.
    """


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the object passed by the interrupter so
    the interrupted process can decide how to react (e.g. a preempted CPU
    slice vs. a cancelled timer).
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"
