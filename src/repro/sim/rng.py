"""Deterministic random-number streams.

Every stochastic component of the simulation draws from its own named child
stream, derived from the experiment's root seed. This makes runs reproducible
*and* keeps components statistically independent: adding a new consumer of
randomness cannot perturb the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class RandomStream(random.Random):
    """A named ``random.Random`` with a few distribution helpers."""

    def __init__(self, seed_material: bytes, name: str):
        digest = hashlib.sha256(seed_material).digest()
        super().__init__(int.from_bytes(digest[:8], "big"))
        self.name = name

    def exponential(self, mean: float) -> float:
        """Exponentially distributed sample with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self.expovariate(1.0 / mean)

    def bounded_normal(self, mean: float, sigma: float, minimum: float = 0.0) -> float:
        """Normal sample truncated below at ``minimum`` (re-draws, max 64)."""
        for _ in range(64):
            sample = self.normalvariate(mean, sigma)
            if sample >= minimum:
                return sample
        return minimum

    def weighted_choice(self, options: Sequence[T], weights: Sequence[float]) -> T:
        """One of ``options`` with probability proportional to ``weights``."""
        if len(options) != len(weights):
            raise ValueError("options and weights must have the same length")
        return self.choices(options, weights=weights, k=1)[0]

    def __repr__(self) -> str:
        return f"<RandomStream {self.name!r}>"


class RandomStreams:
    """Factory of independent named :class:`RandomStream` children."""

    def __init__(self, seed: int):
        self.seed = seed
        self._children: dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """The child stream for ``name`` (created on first use, then cached)."""
        existing = self._children.get(name)
        if existing is not None:
            return existing
        material = f"{self.seed}:{name}".encode()
        child = RandomStream(material, name)
        self._children[name] = child
        return child

    def fork(self, name: str) -> "RandomStreams":
        """A nested family of streams under a sub-namespace."""
        material = f"{self.seed}:{name}"
        sub_seed = int.from_bytes(hashlib.sha256(material.encode()).digest()[:8], "big")
        return RandomStreams(sub_seed)

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.seed} children={sorted(self._children)}>"
